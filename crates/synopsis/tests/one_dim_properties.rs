//! Property-based tests for the one-dimensional `MinMaxErr` engines:
//! engine/split equivalence, optimality against the oracle, and structural
//! invariants — on fully random inputs via proptest.

use proptest::prelude::*;
use wsyn_core::Pool;
use wsyn_synopsis::one_dim::{Config, DedupWorkspace, Engine, MinMaxErr, SplitSearch};
use wsyn_synopsis::{oracle, ErrorMetric};

fn pow2_data() -> impl Strategy<Value = Vec<f64>> {
    (1u32..=4).prop_flat_map(|m| {
        proptest::collection::vec((-50i32..=50).prop_map(f64::from), 1usize << m)
    })
}

/// Integer-valued signals up to `N = 64`. Integer data keeps every
/// engine's float computations dyadic-exact, so cross-engine equality
/// can be asserted on exact bit patterns, not tolerances.
fn pow2_data_large() -> impl Strategy<Value = Vec<f64>> {
    (1u32..=6).prop_flat_map(|m| {
        proptest::collection::vec((-50i32..=50).prop_map(f64::from), 1usize << m)
    })
}

fn metrics() -> impl Strategy<Value = ErrorMetric> {
    prop_oneof![
        Just(ErrorMetric::absolute()),
        (1u32..=20).prop_map(|s| ErrorMetric::relative(f64::from(s) / 2.0)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// All six engine×split configurations compute the same optimum, and
    /// each returned synopsis attains its reported objective.
    #[test]
    fn engines_and_splits_agree(data in pow2_data(), b in 0usize..7, metric in metrics()) {
        let solver = MinMaxErr::new(&data).unwrap();
        let mut objectives = Vec::new();
        for engine in [Engine::Dedup, Engine::SubsetMask, Engine::BottomUp] {
            for split in [SplitSearch::Binary, SplitSearch::Linear] {
                let r = solver.run_with(b, metric, Config { engine, split });
                let true_err = r.synopsis.max_error(&data, metric);
                prop_assert!(
                    (true_err - r.objective).abs() < 1e-9,
                    "{engine:?}/{split:?}: objective {} vs true {}",
                    r.objective, true_err
                );
                prop_assert!(r.synopsis.len() <= b);
                objectives.push(r.objective);
            }
        }
        for w in objectives.windows(2) {
            prop_assert!((w[0] - w[1]).abs() < 1e-9, "engines disagree: {objectives:?}");
        }
    }

    /// The DP matches the exhaustive oracle (Theorem 3.1) on random data.
    #[test]
    fn optimal_vs_oracle(data in pow2_data(), b in 0usize..6, metric in metrics()) {
        let solver = MinMaxErr::new(&data).unwrap();
        let opt = oracle::exhaustive_1d(solver.tree(), &data, b, metric).objective;
        let r = solver.run(b, metric);
        prop_assert!((r.objective - opt).abs() < 1e-9, "{} vs {opt}", r.objective);
    }

    /// Monotone in budget; zero at full budget.
    #[test]
    fn budget_monotonicity(data in pow2_data(), metric in metrics()) {
        let solver = MinMaxErr::new(&data).unwrap();
        let n = data.len();
        let mut prev = f64::INFINITY;
        for b in 0..=n {
            let obj = solver.run(b, metric).objective;
            prop_assert!(obj <= prev + 1e-9, "b={b}: {obj} > {prev}");
            prev = obj;
        }
        prop_assert!(prev < 1e-9, "full budget should be exact, got {prev}");
    }

    /// Shift invariance of absolute error up to the (shifted) average:
    /// adding a constant only changes c_0, so optimal absolute objectives
    /// with c_0 force-included are equal. Weaker checkable form: the
    /// objective changes by at most |shift| in either direction.
    #[test]
    fn absolute_error_shift_stability(data in pow2_data(), b in 1usize..5, shift in -20i32..=20) {
        let shift = f64::from(shift);
        let shifted: Vec<f64> = data.iter().map(|&v| v + shift).collect();
        let o1 = MinMaxErr::new(&data).unwrap().run(b, ErrorMetric::absolute()).objective;
        let o2 = MinMaxErr::new(&shifted).unwrap().run(b, ErrorMetric::absolute()).objective;
        prop_assert!((o1 - o2).abs() <= shift.abs() + 1e-9, "{o1} vs {o2} (shift {shift})");
    }

    /// Permuting data within the two halves' subtrees symmetrically
    /// (mirror the whole vector) preserves the optimal objective — the
    /// error tree is left/right symmetric.
    #[test]
    fn mirror_symmetry(data in pow2_data(), b in 0usize..6, metric in metrics()) {
        let mirrored: Vec<f64> = data.iter().rev().copied().collect();
        let o1 = MinMaxErr::new(&data).unwrap().run(b, metric).objective;
        let o2 = MinMaxErr::new(&mirrored).unwrap().run(b, metric).objective;
        prop_assert!((o1 - o2).abs() < 1e-9, "{o1} vs mirrored {o2}");
    }

    /// Duplicating every value (N -> 2N, pairwise constant) keeps the same
    /// optimal objective at budget b+... : the duplicated signal's finest
    /// detail coefficients are all zero, so the same solution transfers.
    #[test]
    fn pairwise_duplication_preserves_objective(data in pow2_data(), b in 0usize..5, metric in metrics()) {
        let doubled: Vec<f64> = data.iter().flat_map(|&v| [v, v]).collect();
        let o1 = MinMaxErr::new(&data).unwrap().run(b, metric).objective;
        let o2 = MinMaxErr::new(&doubled).unwrap().run(b, metric).objective;
        prop_assert!((o1 - o2).abs() < 1e-9, "{o1} vs doubled {o2}");
    }
}

proptest! {
    // Fewer cases: each one sweeps all budgets through three engines.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The pruned, workspace-reused Dedup kernel returns **bit-identical**
    /// objectives and retained sets vs. the fresh unpruned SubsetMask and
    /// BottomUp engines, across both metrics, all budgets `0..=N`, and
    /// both sweep orders (warm-memo soundness is sweep-order independent).
    /// SubsetMask's quadratic state blow-up makes it the expensive
    /// reference, so it checks a budget sample once `N > 16`; BottomUp
    /// checks every budget.
    #[test]
    fn warm_pruned_dedup_bit_identical_to_fresh_unpruned_engines(
        data in pow2_data_large(),
        metric in metrics(),
        descending in any::<bool>(),
        split_linear in any::<bool>(),
    ) {
        let split = if split_linear { SplitSearch::Linear } else { SplitSearch::Binary };
        let solver = MinMaxErr::new(&data).unwrap();
        let n = data.len();
        let mut budgets: Vec<usize> = (0..=n).collect();
        if descending {
            budgets.reverse();
        }
        let mut ws = DedupWorkspace::new();
        for &b in &budgets {
            let warm = solver.run_warm(b, metric, split, &mut ws);
            let bottom_up = solver.run_with(b, metric, Config { engine: Engine::BottomUp, split });
            prop_assert_eq!(
                warm.objective.to_bits(),
                bottom_up.objective.to_bits(),
                "objective vs BottomUp: n={} b={} {:?} desc={}",
                n, b, metric, descending
            );
            prop_assert_eq!(
                warm.synopsis.indices(),
                bottom_up.synopsis.indices(),
                "retained set vs BottomUp: n={} b={} {:?} desc={}",
                n, b, metric, descending
            );
            if n <= 16 || b % 7 == 0 {
                let subset =
                    solver.run_with(b, metric, Config { engine: Engine::SubsetMask, split });
                prop_assert_eq!(
                    warm.objective.to_bits(),
                    subset.objective.to_bits(),
                    "objective vs SubsetMask: n={} b={} {:?} desc={}",
                    n, b, metric, descending
                );
                prop_assert_eq!(
                    warm.synopsis.indices(),
                    subset.synopsis.indices(),
                    "retained set vs SubsetMask: n={} b={} {:?} desc={}",
                    n, b, metric, descending
                );
            }
        }
        // The whole sweep shared one warm memo: no clears happened.
        prop_assert_eq!(ws.clears(), 0);
    }
}

proptest! {
    // Fewer cases: each one sweeps every budget through every
    // configuration at three pool sizes.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Pool-parallel solves are bit-identical to sequential ones at
    /// threads ∈ {1, 2, 4}, for all eight `Config::ALL` configurations
    /// (N ≤ 64, every budget) — objective bits and retained set at every
    /// count, plus the `DpStats` contract: at one thread the pool takes
    /// the sequential fallback so its stats equal the sequential run's,
    /// and at two or more the decomposed solve's stats are invariant
    /// across counts (the decomposition is determined by the instance
    /// alone, so even the counters cannot depend on the pool size).
    /// SubsetMask's quadratic state blow-up makes it the expensive
    /// pass-through, so it checks a budget sample once `N > 16`,
    /// matching the warm-sweep test above.
    #[test]
    fn pool_parallel_is_bit_identical_to_sequential(
        data in pow2_data_large(),
        metric in metrics(),
    ) {
        let solver = MinMaxErr::new(&data).unwrap();
        let n = data.len();
        for b in 0..=n {
            for config in Config::ALL {
                if matches!(config.engine, Engine::SubsetMask) && n > 16 && b % 7 != 0 {
                    continue;
                }
                let seq = solver.run_with(b, metric, config);
                let mut stats = Vec::new();
                for threads in [1usize, 2, 4] {
                    let pool = Pool::with_threads(threads);
                    let r = solver.run_with_pool(b, metric, config, &pool);
                    prop_assert_eq!(
                        r.objective.to_bits(),
                        seq.objective.to_bits(),
                        "objective: n={} b={} {:?} threads={}",
                        n, b, config, threads
                    );
                    prop_assert_eq!(
                        r.synopsis.indices(),
                        seq.synopsis.indices(),
                        "retained set: n={} b={} {:?} threads={}",
                        n, b, config, threads
                    );
                    stats.push(r.stats);
                }
                prop_assert_eq!(
                    stats[0], seq.stats,
                    "threads=1 must take the sequential fallback: n={} b={}", n, b
                );
                prop_assert_eq!(stats[1], stats[2], "stats 2 vs 4 threads: n={} b={}", n, b);
            }
        }
    }

    /// A pooled warm B-sweep through one workspace matches a sequential
    /// warm sweep exactly, in both sweep orders.
    #[test]
    fn pooled_warm_sweep_matches_sequential_warm_sweep(
        data in pow2_data_large(),
        metric in metrics(),
        descending in any::<bool>(),
    ) {
        let solver = MinMaxErr::new(&data).unwrap();
        let n = data.len();
        let mut budgets: Vec<usize> = (0..=n).collect();
        if descending {
            budgets.reverse();
        }
        let pool = Pool::with_threads(4);
        let mut ws_seq = DedupWorkspace::new();
        let mut ws_par = DedupWorkspace::new();
        for &b in &budgets {
            let seq = solver.run_warm(b, metric, SplitSearch::Binary, &mut ws_seq);
            let par = solver.run_warm_parallel(b, metric, SplitSearch::Binary, &mut ws_par, &pool);
            prop_assert_eq!(
                par.objective.to_bits(),
                seq.objective.to_bits(),
                "objective: n={} b={} desc={}",
                n, b, descending
            );
            prop_assert_eq!(
                par.synopsis.indices(),
                seq.synopsis.indices(),
                "retained set: n={} b={} desc={}",
                n, b, descending
            );
        }
        prop_assert_eq!(ws_par.clears(), 0);
    }
}

/// The fallback boundary itself, deterministically: a one-thread pool
/// (whether from `with_threads(1)` or a clamped `with_threads(0)`) takes
/// the sequential path — full result equality including `DpStats` — and
/// the first genuinely pooled count (2) still matches the sequential
/// reference bit for bit on objective and retained set, for both the
/// cold and warm entry points.
#[test]
fn one_thread_pool_falls_back_to_sequential() {
    let data: Vec<f64> = (0..64)
        .map(|i| f64::from((i * 37 + 11) % 101) - 50.0)
        .collect();
    let solver = MinMaxErr::new(&data).unwrap();
    for metric in [ErrorMetric::absolute(), ErrorMetric::relative(2.0)] {
        for b in [0usize, 1, 7, 32, 64] {
            for config in Config::ALL {
                let seq = solver.run_with(b, metric, config);
                for pool in [Pool::with_threads(1), Pool::with_threads(0)] {
                    let one = solver.run_with_pool(b, metric, config, &pool);
                    assert_eq!(one.objective.to_bits(), seq.objective.to_bits());
                    assert_eq!(one.synopsis.indices(), seq.synopsis.indices());
                    assert_eq!(
                        one.stats, seq.stats,
                        "one-thread pool must not pay shard speculation: \
                         b={b} {config:?}"
                    );
                }
                let two = solver.run_with_pool(b, metric, config, &Pool::with_threads(2));
                assert_eq!(two.objective.to_bits(), seq.objective.to_bits());
                assert_eq!(two.synopsis.indices(), seq.synopsis.indices());
            }

            // Warm path: a one-thread warm sweep through one workspace is
            // the sequential warm sweep, stats included.
            let mut ws_seq = DedupWorkspace::new();
            let mut ws_one = DedupWorkspace::new();
            let seq = solver.run_warm(b, metric, SplitSearch::Binary, &mut ws_seq);
            let one = solver.run_warm_parallel(
                b,
                metric,
                SplitSearch::Binary,
                &mut ws_one,
                &Pool::with_threads(1),
            );
            assert_eq!(one.objective.to_bits(), seq.objective.to_bits());
            assert_eq!(one.synopsis.indices(), seq.synopsis.indices());
            assert_eq!(one.stats, seq.stats, "warm fallback stats: b={b}");
        }
    }
}
