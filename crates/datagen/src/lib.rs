//! # wsyn-datagen — seeded synthetic workloads for wavelet-synopsis
//! experiments
//!
//! The PODS 2004 paper defers its empirical study; its companion papers
//! (Garofalakis & Gibbons, SIGMOD'02/TODS'04; Vitter & Wang; Chakrabarti
//! et al.) evaluate wavelet synopses on skewed frequency vectors and
//! OLAP-style measure arrays. This crate generates seeded synthetic
//! stand-ins exercising the same regimes:
//!
//! * [`zipf`] — Zipfian frequency vectors (the classic selectivity
//!   workload), with configurable skew and value placement;
//! * [`gaussian_bumps`] — smooth multi-modal signals with optional noise
//!   (locally smooth data where wavelets shine);
//! * [`piecewise_constant`] — step signals (the adversarial case for L2
//!   thresholding under relative error: flat regions of small values);
//! * [`spikes`] — mostly-flat signals with a few large isolated spikes
//!   (sparse wavelet coefficients, the greedy-L2 worst case, and the
//!   shape where wavelets beat step-function histograms);
//! * [`cube_bumps`] — multi-dimensional Gaussian-bump hypercubes for the
//!   §3.2 schemes;
//! * quantization & padding helpers.
//!
//! All generators are deterministic given a seed (`StdRng::seed_from_u64`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// How Zipfian frequencies are placed over the domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZipfPlacement {
    /// Largest frequency at index 0, monotonically decreasing (the
    /// textbook picture; smooth for wavelets).
    Decreasing,
    /// Frequencies assigned to random positions (seeded) — spiky, the hard
    /// case for thresholding.
    Shuffled,
}

/// A Zipfian frequency vector: `f_rank ∝ 1/rank^skew`, scaled so the
/// frequencies sum to (approximately) `total` and rounded to integers.
///
/// `skew = 0` is uniform; `skew ≈ 1` classic Zipf; larger is more skewed.
///
/// # Panics
/// Panics when `n == 0`.
pub fn zipf(n: usize, skew: f64, total: f64, placement: ZipfPlacement, seed: u64) -> Vec<f64> {
    assert!(n > 0, "empty domain");
    let weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(skew)).collect();
    let sum: f64 = weights.iter().sum();
    let mut freqs: Vec<f64> = weights.iter().map(|w| (w / sum * total).round()).collect();
    if let ZipfPlacement::Shuffled = placement {
        let mut rng = StdRng::seed_from_u64(seed);
        freqs.shuffle(&mut rng);
    }
    freqs
}

/// A sum of `bumps` Gaussian bumps over `[0, n)` plus i.i.d. noise:
/// centers, amplitudes (in `amp_range`) and widths (in `width_range`,
/// as a fraction of `n`) are drawn from the seeded RNG;
/// `noise_sigma ≥ 0` adds Gaussian noise (Box–Muller).
///
/// # Panics
/// Panics when `n == 0` or a range is inverted.
pub fn gaussian_bumps(
    n: usize,
    bumps: usize,
    amp_range: (f64, f64),
    width_range: (f64, f64),
    noise_sigma: f64,
    seed: u64,
) -> Vec<f64> {
    assert!(n > 0, "empty domain");
    assert!(amp_range.0 <= amp_range.1 && width_range.0 <= width_range.1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![0.0f64; n];
    for _ in 0..bumps {
        let center = rng.gen_range(0.0..n as f64);
        let amp = rng.gen_range(amp_range.0..=amp_range.1);
        let width = rng.gen_range(width_range.0..=width_range.1) * n as f64;
        for (i, v) in out.iter_mut().enumerate() {
            let z = (i as f64 - center) / width.max(1e-9);
            *v += amp * (-0.5 * z * z).exp();
        }
    }
    if noise_sigma > 0.0 {
        for v in &mut out {
            *v += noise_sigma * gauss(&mut rng);
        }
    }
    out
}

/// A piecewise-constant signal with `segments` random-length segments whose
/// levels are drawn uniformly from `value_range`, plus optional noise.
///
/// # Panics
/// Panics when `n == 0` or `segments == 0`.
pub fn piecewise_constant(
    n: usize,
    segments: usize,
    value_range: (f64, f64),
    noise_sigma: f64,
    seed: u64,
) -> Vec<f64> {
    assert!(n > 0 && segments > 0, "empty domain or zero segments");
    let mut rng = StdRng::seed_from_u64(seed);
    // Random segment boundaries.
    let mut cuts: Vec<usize> = (0..segments - 1).map(|_| rng.gen_range(0..n)).collect();
    cuts.push(0);
    cuts.push(n);
    cuts.sort_unstable();
    cuts.dedup();
    let mut out = vec![0.0f64; n];
    for w in cuts.windows(2) {
        let level = rng.gen_range(value_range.0..=value_range.1);
        for v in &mut out[w[0]..w[1]] {
            *v = level;
        }
    }
    if noise_sigma > 0.0 {
        for v in &mut out {
            *v += noise_sigma * gauss(&mut rng);
        }
    }
    out
}

/// A mostly-flat signal (uniform noise in `noise_range`) with `count`
/// large isolated spikes whose magnitudes are drawn from `spike_range`
/// and whose signs are coin flips. Each spike occupies a single cell,
/// so the wavelet transform is sparse while any step function must
/// spend two bucket boundaries per spike — the shape where the two
/// synopsis families diverge the most.
///
/// # Panics
/// Panics when `n == 0` or a range is inverted.
pub fn spikes(
    n: usize,
    count: usize,
    spike_range: (f64, f64),
    noise_range: (f64, f64),
    seed: u64,
) -> Vec<f64> {
    assert!(n > 0, "empty domain");
    assert!(spike_range.0 <= spike_range.1 && noise_range.0 <= noise_range.1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<f64> = (0..n)
        .map(|_| rng.gen_range(noise_range.0..=noise_range.1))
        .collect();
    for _ in 0..count {
        let i = rng.gen_range(0..n);
        let sign = if rng.gen_range(0..2) == 0 { -1.0 } else { 1.0 };
        out[i] = sign * rng.gen_range(spike_range.0..=spike_range.1);
    }
    out
}

/// A `D`-dimensional hypercube (`side^d` cells, row-major) filled with
/// Gaussian bumps plus a constant base level — the multi-dimensional
/// workload for the §3.2 schemes.
///
/// # Panics
/// Panics when `side == 0` or `d == 0`.
pub fn cube_bumps(
    side: usize,
    d: usize,
    bumps: usize,
    amp_range: (f64, f64),
    base: f64,
    seed: u64,
) -> Vec<f64> {
    assert!(side > 0 && d > 0, "degenerate cube");
    let n: usize = side.pow(d as u32);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![base; n];
    let centers: Vec<(Vec<f64>, f64, f64)> = (0..bumps)
        .map(|_| {
            let c: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..side as f64)).collect();
            let amp = rng.gen_range(amp_range.0..=amp_range.1);
            let width = rng.gen_range(0.05..=0.3) * side as f64;
            (c, amp, width)
        })
        .collect();
    let mut coords = vec![0usize; d];
    for (idx, v) in out.iter_mut().enumerate() {
        // Delinearize (row-major, last dim fastest).
        let mut rem = idx;
        for k in (0..d).rev() {
            coords[k] = rem % side;
            rem /= side;
        }
        for (c, amp, width) in &centers {
            let z2: f64 = coords
                .iter()
                .zip(c)
                .map(|(&x, &cc)| {
                    let z = (x as f64 - cc) / width.max(1e-9);
                    z * z
                })
                .sum();
            *v += amp * (-0.5 * z2).exp();
        }
    }
    out
}

/// Rounds a float signal to `i64` values (for the integer-only `(1+ε)`
/// scheme of §3.2.2).
pub fn quantize_to_i64(data: &[f64]) -> Vec<i64> {
    data.iter().map(|&v| v.round() as i64).collect()
}

/// Pads a vector with `fill` up to the next power of two (the paper's
/// algorithms require power-of-two domains).
pub fn pad_to_pow2(mut data: Vec<f64>, fill: f64) -> Vec<f64> {
    let n = data.len().max(1);
    let target = n.next_power_of_two();
    data.resize(target, fill);
    data
}

/// A standard-normal sample via Box–Muller.
fn gauss<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_decreasing_is_monotone_and_sums_to_total() {
        let f = zipf(64, 1.0, 10_000.0, ZipfPlacement::Decreasing, 0);
        assert_eq!(f.len(), 64);
        for w in f.windows(2) {
            assert!(w[0] >= w[1]);
        }
        let sum: f64 = f.iter().sum();
        assert!((sum - 10_000.0).abs() < 64.0, "sum {sum}"); // rounding slack
                                                             // Skew: the head dominates.
        assert!(f[0] > 10.0 * f[32]);
    }

    #[test]
    fn zipf_shuffled_is_permutation_of_decreasing() {
        let a = zipf(32, 0.8, 5_000.0, ZipfPlacement::Decreasing, 7);
        let mut b = zipf(32, 0.8, 5_000.0, ZipfPlacement::Shuffled, 7);
        b.sort_by(|x, y| y.total_cmp(x));
        assert_eq!(a, b);
    }

    #[test]
    fn zipf_zero_skew_is_uniform() {
        let f = zipf(16, 0.0, 1600.0, ZipfPlacement::Decreasing, 0);
        assert!(f.iter().all(|&v| v == 100.0));
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(
            gaussian_bumps(128, 4, (10.0, 50.0), (0.02, 0.1), 1.0, 99),
            gaussian_bumps(128, 4, (10.0, 50.0), (0.02, 0.1), 1.0, 99)
        );
        assert_ne!(
            gaussian_bumps(128, 4, (10.0, 50.0), (0.02, 0.1), 1.0, 99),
            gaussian_bumps(128, 4, (10.0, 50.0), (0.02, 0.1), 1.0, 100)
        );
        assert_eq!(
            piecewise_constant(64, 6, (0.0, 100.0), 0.5, 3),
            piecewise_constant(64, 6, (0.0, 100.0), 0.5, 3)
        );
        assert_eq!(
            cube_bumps(8, 2, 3, (5.0, 20.0), 1.0, 11),
            cube_bumps(8, 2, 3, (5.0, 20.0), 1.0, 11)
        );
    }

    #[test]
    fn bumps_have_positive_mass_without_noise() {
        let b = gaussian_bumps(64, 3, (10.0, 20.0), (0.05, 0.1), 0.0, 5);
        assert!(b.iter().all(|&v| v >= 0.0));
        assert!(b.iter().any(|&v| v > 5.0));
    }

    #[test]
    fn piecewise_is_actually_piecewise() {
        let p = piecewise_constant(128, 5, (0.0, 10.0), 0.0, 2);
        // Number of value changes is at most segments - 1.
        let changes = p.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(changes <= 4, "{changes} changes");
    }

    #[test]
    fn spikes_are_sparse_and_large() {
        let s = spikes(256, 4, (60.0, 100.0), (-3.0, 3.0), 9);
        assert_eq!(s, spikes(256, 4, (60.0, 100.0), (-3.0, 3.0), 9));
        let big = s.iter().filter(|v| v.abs() >= 60.0).count();
        assert!((1..=4).contains(&big), "{big} spikes");
        assert!(s.iter().filter(|v| v.abs() <= 3.0).count() >= 250);
    }

    #[test]
    fn cube_bumps_shape() {
        let c = cube_bumps(4, 3, 2, (1.0, 2.0), 0.5, 1);
        assert_eq!(c.len(), 64);
        assert!(c.iter().all(|&v| v >= 0.5));
    }

    #[test]
    fn quantize_rounds() {
        assert_eq!(quantize_to_i64(&[1.4, -2.6, 0.5]), vec![1, -3, 1]);
    }

    #[test]
    fn pad_to_pow2_works() {
        assert_eq!(
            pad_to_pow2(vec![1.0, 2.0, 3.0], 0.0),
            vec![1.0, 2.0, 3.0, 0.0]
        );
        assert_eq!(pad_to_pow2(vec![1.0; 4], 9.9), vec![1.0; 4]);
        assert_eq!(pad_to_pow2(vec![], 2.0).len(), 1);
    }
}
