//! Error types shared by the wavelet substrate.

use std::fmt;

/// Errors raised by wavelet transforms and error-tree constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HaarError {
    /// The input length (or a dimension side) was not a power of two.
    NotPowerOfTwo {
        /// The offending length.
        len: usize,
    },
    /// The input was empty.
    Empty,
    /// A dimension side disagreed with the declared shape, or the flat
    /// buffer length did not equal the product of the sides.
    ShapeMismatch {
        /// Expected number of cells.
        expected: usize,
        /// Number of cells actually supplied.
        actual: usize,
    },
    /// The nonstandard multi-dimensional decomposition requires all sides
    /// to be equal; they were not.
    UnequalSides,
    /// Integer arithmetic overflowed while computing the scaled transform
    /// of §3.2.2. Reduce the magnitude of the input data or the domain
    /// size.
    Overflow,
    /// Zero dimensions were supplied.
    ZeroDimensional,
}

impl fmt::Display for HaarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HaarError::NotPowerOfTwo { len } => {
                write!(f, "length {len} is not a power of two")
            }
            HaarError::Empty => write!(f, "input is empty"),
            HaarError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected} cells, got {actual}")
            }
            HaarError::UnequalSides => write!(
                f,
                "nonstandard decomposition requires all dimension sides equal"
            ),
            HaarError::Overflow => {
                write!(f, "integer overflow in scaled Haar transform")
            }
            HaarError::ZeroDimensional => write!(f, "zero dimensions supplied"),
        }
    }
}

impl std::error::Error for HaarError {}

/// Lifts a transform failure into the workspace-wide error. The
/// conversion lives here rather than in `wsyn-core` because core is
/// dependency-free by policy and cannot name [`HaarError`]; the rendered
/// message is preserved verbatim in [`WsynError::Transform`].
impl From<HaarError> for wsyn_core::WsynError {
    fn from(err: HaarError) -> wsyn_core::WsynError {
        wsyn_core::WsynError::Transform(err.to_string())
    }
}
