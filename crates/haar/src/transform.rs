//! One-dimensional Haar wavelet transform (§2.1 of the paper).
//!
//! The paper's convention is **unnormalized**: one decomposition step maps a
//! pair `(a, b)` to the pairwise average `(a + b) / 2` and the detail
//! coefficient `(a - b) / 2` (the difference of the *first* value from the
//! average). Recursing on the averages yields the transform array
//! `W_A = [overall average, coarsest detail, ..., finest details]`.
//!
//! For the §2.1 example `A = [2, 2, 0, 2, 3, 5, 4, 4]` this produces
//! `W_A = [11/4, -5/4, 1/2, 0, 0, -1, -1, 0]` — reproduced exactly by the
//! unit tests below (f64 arithmetic on dyadic rationals is exact).

use crate::{is_pow2, log2_exact, HaarError};

/// Computes the unnormalized 1-D Haar wavelet transform of `data`.
///
/// `data.len()` must be a non-zero power of two. Runs in `O(N)` time and
/// allocates one scratch buffer of `N/2` values.
///
/// # Errors
/// [`HaarError::Empty`] / [`HaarError::NotPowerOfTwo`] on bad input length.
///
/// # Examples
/// ```
/// let w = wsyn_haar::transform::forward(&[2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0]).unwrap();
/// assert_eq!(w, vec![2.75, -1.25, 0.5, 0.0, 0.0, -1.0, -1.0, 0.0]);
/// ```
pub fn forward(data: &[f64]) -> Result<Vec<f64>, HaarError> {
    if data.is_empty() {
        return Err(HaarError::Empty);
    }
    if !is_pow2(data.len()) {
        return Err(HaarError::NotPowerOfTwo { len: data.len() });
    }
    let mut out = data.to_vec();
    forward_in_place(&mut out);
    Ok(out)
}

/// In-place variant of [`forward`]; `data.len()` must already be a power of
/// two (checked by `debug_assert` only — intended for hot paths that have
/// validated their shapes once).
pub fn forward_in_place(data: &mut [f64]) {
    debug_assert!(is_pow2(data.len()));
    let n = data.len();
    // Scratch holds averages in [..half] and details in [half..len] so that
    // writes never alias reads of the current level.
    let mut scratch = vec![0.0f64; n];
    let mut len = n;
    while len > 1 {
        let half = len / 2;
        for i in 0..half {
            let a = data[2 * i];
            let b = data[2 * i + 1];
            scratch[i] = (a + b) / 2.0; // pairwise average
            scratch[half + i] = (a - b) / 2.0; // detail coefficient
        }
        data[..len].copy_from_slice(&scratch[..len]);
        len = half;
    }
}

/// Reconstructs the original data array from an unnormalized Haar transform.
///
/// Exact inverse of [`forward`] (dyadic arithmetic, no rounding error for
/// dyadic inputs).
///
/// # Errors
/// [`HaarError::Empty`] / [`HaarError::NotPowerOfTwo`] on bad input length.
pub fn inverse(coeffs: &[f64]) -> Result<Vec<f64>, HaarError> {
    if coeffs.is_empty() {
        return Err(HaarError::Empty);
    }
    if !is_pow2(coeffs.len()) {
        return Err(HaarError::NotPowerOfTwo { len: coeffs.len() });
    }
    let mut out = coeffs.to_vec();
    inverse_in_place(&mut out);
    Ok(out)
}

/// In-place variant of [`inverse`].
pub fn inverse_in_place(coeffs: &mut [f64]) {
    debug_assert!(is_pow2(coeffs.len()));
    let n = coeffs.len();
    let mut scratch = vec![0.0f64; n];
    let mut len = 1usize;
    while len < n {
        // Averages occupy coeffs[..len], details coeffs[len..2*len].
        for i in 0..len {
            let avg = coeffs[i];
            let detail = coeffs[len + i];
            scratch[2 * i] = avg + detail;
            scratch[2 * i + 1] = avg - detail;
        }
        coeffs[..2 * len].copy_from_slice(&scratch[..2 * len]);
        len *= 2;
    }
}

/// Resolution level of coefficient `i` (paper §2.1): `level(c_0) = 0` and
/// `level(c_i) = floor(log2 i)` for `i >= 1`. Level 0 is the *coarsest*
/// resolution.
#[inline]
pub fn level(i: usize) -> u32 {
    if i == 0 {
        0
    } else {
        usize::BITS - 1 - i.leading_zeros()
    }
}

/// Size of the support region of coefficient `i` in a domain of `n` values:
/// `n / 2^level(i)`. Both `c_0` and `c_1` have support `n`.
#[inline]
pub fn support_len(i: usize, n: usize) -> usize {
    n >> level(i)
}

/// Normalized coefficient magnitudes `|c_i| * sqrt(support_len(i, n))`,
/// proportional to the paper's `|c_i| / sqrt(2^level(i))` ranking (the
/// common `sqrt(n)` factor does not affect ordering). Conventional greedy
/// thresholding retains the `B` largest of these (§2.3); that ranking is
/// provably optimal for L2 error.
pub fn normalized_magnitudes(coeffs: &[f64]) -> Vec<f64> {
    let n = coeffs.len();
    coeffs
        .iter()
        .enumerate()
        .map(|(i, &c)| c.abs() * (support_len(i, n) as f64).sqrt())
        .collect()
}

/// Sum of squares of the data array implied by a coefficient array
/// (Parseval for the unnormalized basis): `Σ_i c_i² · support_len(i, n)`.
/// Used in tests to validate normalization without reconstructing.
pub fn energy(coeffs: &[f64]) -> f64 {
    let n = coeffs.len();
    coeffs
        .iter()
        .enumerate()
        .map(|(i, &c)| c * c * support_len(i, n) as f64)
        .sum()
}

/// Number of resolution levels in a domain of `n = 2^m` values (`m`).
#[inline]
pub fn num_levels(n: usize) -> u32 {
    log2_exact(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §2.1 example data vector.
    pub(crate) const EXAMPLE: [f64; 8] = [2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0];

    #[test]
    fn worked_example_matches_paper() {
        let w = forward(&EXAMPLE).unwrap();
        assert_eq!(
            w,
            vec![11.0 / 4.0, -5.0 / 4.0, 0.5, 0.0, 0.0, -1.0, -1.0, 0.0]
        );
    }

    #[test]
    fn worked_example_intermediate_resolutions() {
        // The §2.1 table: averages per resolution and detail coefficients.
        let mut data = EXAMPLE.to_vec();
        let mut averages = Vec::new();
        let mut details = Vec::new();
        let mut cur = data.clone();
        while cur.len() > 1 {
            let half = cur.len() / 2;
            let avg: Vec<f64> = (0..half)
                .map(|i| (cur[2 * i] + cur[2 * i + 1]) / 2.0)
                .collect();
            let det: Vec<f64> = (0..half)
                .map(|i| (cur[2 * i] - cur[2 * i + 1]) / 2.0)
                .collect();
            averages.push(avg.clone());
            details.push(det);
            cur = avg;
        }
        assert_eq!(averages[0], vec![2.0, 1.0, 4.0, 4.0]);
        assert_eq!(details[0], vec![0.0, -1.0, -1.0, 0.0]);
        assert_eq!(averages[1], vec![1.5, 4.0]);
        assert_eq!(details[1], vec![0.5, 0.0]);
        assert_eq!(averages[2], vec![11.0 / 4.0]);
        assert_eq!(details[2], vec![-5.0 / 4.0]);
        // forward() must agree with the hand-rolled recursion.
        forward_in_place(&mut data);
        assert_eq!(data[0], 11.0 / 4.0);
    }

    #[test]
    fn roundtrip_exact_for_dyadic_input() {
        let w = forward(&EXAMPLE).unwrap();
        let back = inverse(&w).unwrap();
        assert_eq!(back, EXAMPLE.to_vec());
    }

    #[test]
    fn single_element() {
        let w = forward(&[42.0]).unwrap();
        assert_eq!(w, vec![42.0]);
        assert_eq!(inverse(&w).unwrap(), vec![42.0]);
    }

    #[test]
    fn two_elements() {
        let w = forward(&[3.0, 1.0]).unwrap();
        assert_eq!(w, vec![2.0, 1.0]);
        assert_eq!(inverse(&w).unwrap(), vec![3.0, 1.0]);
    }

    #[test]
    fn rejects_bad_lengths() {
        assert_eq!(forward(&[]).unwrap_err(), HaarError::Empty);
        assert_eq!(
            forward(&[1.0, 2.0, 3.0]).unwrap_err(),
            HaarError::NotPowerOfTwo { len: 3 }
        );
        assert_eq!(inverse(&[]).unwrap_err(), HaarError::Empty);
        assert_eq!(
            inverse(&[1.0; 6]).unwrap_err(),
            HaarError::NotPowerOfTwo { len: 6 }
        );
    }

    #[test]
    fn levels_match_paper_figure_1a() {
        // Figure 1(a): c_0, c_1 at level 0; c_2, c_3 at level 1; c_4..c_7 at level 2.
        assert_eq!(level(0), 0);
        assert_eq!(level(1), 0);
        assert_eq!(level(2), 1);
        assert_eq!(level(3), 1);
        for i in 4..8 {
            assert_eq!(level(i), 2, "c_{i}");
        }
    }

    #[test]
    fn support_lengths() {
        let n = 8;
        assert_eq!(support_len(0, n), 8);
        assert_eq!(support_len(1, n), 8);
        assert_eq!(support_len(2, n), 4);
        assert_eq!(support_len(3, n), 4);
        for i in 4..8 {
            assert_eq!(support_len(i, n), 2);
        }
    }

    #[test]
    fn parseval_energy() {
        let w = forward(&EXAMPLE).unwrap();
        let direct: f64 = EXAMPLE.iter().map(|d| d * d).sum();
        assert!((energy(&w) - direct).abs() < 1e-9);
    }

    #[test]
    fn constant_signal_has_single_nonzero_coefficient() {
        let w = forward(&[7.0; 16]).unwrap();
        assert_eq!(w[0], 7.0);
        assert!(w[1..].iter().all(|&c| c == 0.0));
    }

    #[test]
    fn linearity() {
        let a = [1.0, -2.0, 3.5, 0.25, -1.0, 8.0, 0.0, 4.0];
        let b = [0.5, 0.5, -3.0, 2.0, 9.0, -1.0, 1.0, 1.0];
        let wa = forward(&a).unwrap();
        let wb = forward(&b).unwrap();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let wsum = forward(&sum).unwrap();
        for i in 0..8 {
            assert!((wsum[i] - (wa[i] + wb[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn normalized_magnitudes_rank_overall_average_highest_for_shifted_data() {
        // A large DC offset should dominate the normalized ranking.
        let data: Vec<f64> = (0..16).map(|i| 100.0 + f64::from(i % 2)).collect();
        let w = forward(&data).unwrap();
        let norm = normalized_magnitudes(&w);
        let max_idx = norm
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_idx, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn pow2_vec() -> impl Strategy<Value = Vec<f64>> {
        (0u32..=7).prop_flat_map(|m| proptest::collection::vec(-1e6f64..1e6, 1usize << m))
    }

    proptest! {
        #[test]
        fn roundtrip(data in pow2_vec()) {
            let w = forward(&data).unwrap();
            let back = inverse(&w).unwrap();
            for (x, y) in data.iter().zip(&back) {
                prop_assert!((x - y).abs() <= 1e-6 * (1.0 + x.abs()));
            }
        }

        #[test]
        fn parseval(data in pow2_vec()) {
            let w = forward(&data).unwrap();
            let direct: f64 = data.iter().map(|d| d * d).sum();
            prop_assert!((energy(&w) - direct).abs() <= 1e-6 * (1.0 + direct.abs()));
        }

        #[test]
        fn dc_shift_only_affects_average(data in pow2_vec(), shift in -1e3f64..1e3) {
            let w = forward(&data).unwrap();
            let shifted: Vec<f64> = data.iter().map(|d| d + shift).collect();
            let w2 = forward(&shifted).unwrap();
            prop_assert!((w2[0] - (w[0] + shift)).abs() <= 1e-6 * (1.0 + shift.abs() + w[0].abs()));
            for i in 1..w.len() {
                prop_assert!((w2[i] - w[i]).abs() <= 1e-7 * (1.0 + w[i].abs()));
            }
        }
    }
}
