//! Integer-scaled Haar transforms (§3.2.2).
//!
//! The `(1+ε)`-approximation scheme for maximum absolute error assumes all
//! wavelet coefficients are integers, which the paper obtains by scaling
//! integer data "by a factor of `O(2^{D log N}) = O(N^D)`". Concretely: for
//! a `2^m`-per-side `D`-dimensional integer array, pre-multiplying every
//! value by `2^{D·m}` makes every intermediate pairwise average — and hence
//! every coefficient — an exact integer, because the decomposition performs
//! exactly `D·m` halvings along any root-to-coefficient path.
//!
//! All arithmetic is checked; overflow surfaces as
//! [`HaarError::Overflow`] instead of wrapping.

use crate::nd::NdShape;
use crate::{is_pow2, log2_exact, HaarError};

/// Result of an integer-scaled transform: `coeffs[i] = scale * W_A[i]`,
/// all exactly integral.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaledCoeffs {
    /// Scaled integer coefficients (same layout as the f64 transform).
    pub coeffs: Vec<i64>,
    /// The scale factor (`2^m` in 1-D, `2^{D·m}` in D dimensions).
    pub scale: i64,
}

impl ScaledCoeffs {
    /// Maximum absolute scaled coefficient value (the paper's `R_Z`).
    pub fn max_abs(&self) -> i64 {
        self.coeffs.iter().map(|c| c.abs()).max().unwrap_or(0)
    }

    /// Converts back to unnormalized f64 coefficients (`c / scale`).
    pub fn to_f64(&self) -> Vec<f64> {
        let s = self.scale as f64;
        self.coeffs.iter().map(|&c| c as f64 / s).collect()
    }
}

#[inline]
fn checked_scale(data: &[i64], scale: i64) -> Result<Vec<i64>, HaarError> {
    data.iter()
        .map(|&v| v.checked_mul(scale).ok_or(HaarError::Overflow))
        .collect()
}

/// Integer-scaled 1-D Haar transform of integer data; scale is `N = 2^m`.
///
/// # Errors
/// [`HaarError`] on bad lengths or on `i64` overflow.
pub fn forward_scaled_1d(data: &[i64]) -> Result<ScaledCoeffs, HaarError> {
    if data.is_empty() {
        return Err(HaarError::Empty);
    }
    if !is_pow2(data.len()) {
        return Err(HaarError::NotPowerOfTwo { len: data.len() });
    }
    let n = data.len();
    let scale = 1i64.checked_shl(log2_exact(n)).ok_or(HaarError::Overflow)?;
    let mut buf = checked_scale(data, scale)?;
    // Buffer the whole level in scratch so detail writes never alias reads.
    let mut scratch = vec![0i64; n];
    let mut len = n;
    while len > 1 {
        let half = len / 2;
        for i in 0..half {
            let a = buf[2 * i];
            let b = buf[2 * i + 1];
            let sum = a.checked_add(b).ok_or(HaarError::Overflow)?;
            let diff = a.checked_sub(b).ok_or(HaarError::Overflow)?;
            debug_assert!(sum % 2 == 0 && diff % 2 == 0);
            scratch[i] = sum / 2;
            scratch[half + i] = diff / 2;
        }
        buf[..len].copy_from_slice(&scratch[..len]);
        len = half;
    }
    Ok(ScaledCoeffs { coeffs: buf, scale })
}

/// Integer-scaled nonstandard D-dimensional Haar transform; scale is
/// `2^{D·m}` for a `2^m`-per-side hypercube.
///
/// # Errors
/// [`HaarError`] on non-hypercube shapes, shape mismatch, or overflow.
pub fn forward_scaled_nd(shape: &NdShape, data: &[i64]) -> Result<ScaledCoeffs, HaarError> {
    if !shape.is_hypercube() {
        return Err(HaarError::UnequalSides);
    }
    if data.len() != shape.len() {
        return Err(HaarError::ShapeMismatch {
            expected: shape.len(),
            actual: data.len(),
        });
    }
    let side = shape.sides()[0];
    let d = shape.ndims();
    let m = log2_exact(side);
    let total_shift = u32::try_from(d)
        .map_err(|_| HaarError::Overflow)?
        .checked_mul(m)
        .ok_or(HaarError::Overflow)?;
    if total_shift >= 63 {
        return Err(HaarError::Overflow);
    }
    let scale = 1i64 << total_shift;
    let mut buf = checked_scale(data, scale)?;
    let mut size = side;
    while size > 1 {
        for dim in 0..d {
            step_along_i64(&mut buf, shape, dim, size)?;
        }
        size /= 2;
    }
    Ok(ScaledCoeffs { coeffs: buf, scale })
}

fn step_along_i64(
    data: &mut [i64],
    shape: &NdShape,
    dim: usize,
    size: usize,
) -> Result<(), HaarError> {
    let d = shape.ndims();
    let half = size / 2;
    let mut stride = 1usize;
    for k in (dim + 1)..d {
        stride *= shape.sides()[k];
    }
    let mut coords = vec![0usize; d];
    let mut lo = vec![0i64; half];
    let mut hi = vec![0i64; half];
    loop {
        let base = shape.linearize(&coords);
        for i in 0..half {
            let a = data[base + 2 * i * stride];
            let b = data[base + (2 * i + 1) * stride];
            let sum = a.checked_add(b).ok_or(HaarError::Overflow)?;
            let diff = a.checked_sub(b).ok_or(HaarError::Overflow)?;
            debug_assert!(sum % 2 == 0 && diff % 2 == 0);
            lo[i] = sum / 2;
            hi[i] = diff / 2;
        }
        for i in 0..half {
            data[base + i * stride] = lo[i];
            data[base + (half + i) * stride] = hi[i];
        }
        let mut k = d;
        loop {
            if k == 0 {
                return Ok(());
            }
            k -= 1;
            if k == dim {
                continue;
            }
            coords[k] += 1;
            if coords[k] < size {
                break;
            }
            coords[k] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nd::{nonstandard, NdArray};

    #[test]
    fn scaled_1d_matches_f64_transform() {
        let data = [2i64, 2, 0, 2, 3, 5, 4, 4];
        let sc = forward_scaled_1d(&data).unwrap();
        assert_eq!(sc.scale, 8);
        let f: Vec<f64> = data.iter().map(|&v| v as f64).collect();
        let w = crate::transform::forward(&f).unwrap();
        for (i, &c) in sc.coeffs.iter().enumerate() {
            assert_eq!(c as f64, w[i] * 8.0, "coeff {i}");
        }
        // Spot-check: W[0] = 11/4 -> 22; W[1] = -5/4 -> -10.
        assert_eq!(sc.coeffs[0], 22);
        assert_eq!(sc.coeffs[1], -10);
    }

    #[test]
    fn scaled_nd_matches_f64_transform() {
        let shape = NdShape::hypercube(4, 2).unwrap();
        let data: Vec<i64> = (0..16).map(|i| i64::from(i * i % 7) - 3).collect();
        let sc = forward_scaled_nd(&shape, &data).unwrap();
        assert_eq!(sc.scale, 16);
        let f: Vec<f64> = data.iter().map(|&v| v as f64).collect();
        let w = nonstandard::forward(&NdArray::new(shape, f).unwrap()).unwrap();
        for (i, &c) in sc.coeffs.iter().enumerate() {
            assert_eq!(c as f64, w.data()[i] * 16.0, "coeff {i}");
        }
    }

    #[test]
    fn to_f64_roundtrip() {
        let data = [7i64, -3, 12, 0];
        let sc = forward_scaled_1d(&data).unwrap();
        let w = crate::transform::forward(&[7.0, -3.0, 12.0, 0.0]).unwrap();
        assert_eq!(sc.to_f64(), w);
    }

    #[test]
    fn max_abs_reports_rz() {
        let data = [100i64, -100, 0, 0];
        let sc = forward_scaled_1d(&data).unwrap();
        assert_eq!(
            sc.max_abs(),
            sc.coeffs.iter().map(|c| c.abs()).max().unwrap()
        );
        assert!(sc.max_abs() >= 400); // (100 - (-100))/2 * 4 = 400
    }

    #[test]
    fn overflow_detected() {
        let data = [i64::MAX / 2, i64::MAX / 2];
        assert_eq!(forward_scaled_1d(&data).unwrap_err(), HaarError::Overflow);
    }

    #[test]
    fn bad_shapes_rejected() {
        assert_eq!(forward_scaled_1d(&[]).unwrap_err(), HaarError::Empty);
        assert_eq!(
            forward_scaled_1d(&[1, 2, 3]).unwrap_err(),
            HaarError::NotPowerOfTwo { len: 3 }
        );
        let shape = NdShape::new(vec![2, 4]).unwrap();
        assert_eq!(
            forward_scaled_nd(&shape, &[0; 8]).unwrap_err(),
            HaarError::UnequalSides
        );
        let shape = NdShape::hypercube(2, 2).unwrap();
        assert_eq!(
            forward_scaled_nd(&shape, &[0; 5]).unwrap_err(),
            HaarError::ShapeMismatch {
                expected: 4,
                actual: 5
            }
        );
    }

    #[test]
    fn halvings_always_exact() {
        // Odd inputs still produce exact integers thanks to the pre-scale.
        let data = [1i64, 0, 0, 0, 0, 0, 0, 1];
        let sc = forward_scaled_1d(&data).unwrap();
        let f = crate::transform::forward(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0]).unwrap();
        for (i, &c) in sc.coeffs.iter().enumerate() {
            assert_eq!(c as f64, f[i] * 8.0);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::nd::{nonstandard, NdArray};
    use proptest::prelude::*;

    proptest! {
        /// Scaled integer coefficients always equal scale × the f64
        /// transform exactly, for random integer data (1-D).
        #[test]
        fn scaled_1d_always_exact(m in 0u32..=6,
                                  vals in proptest::collection::vec(-1000i64..1000, 64)) {
            let n = 1usize << m;
            let data: Vec<i64> = vals.into_iter().take(n).collect();
            prop_assume!(data.len() == n);
            let sc = forward_scaled_1d(&data).unwrap();
            let f: Vec<f64> = data.iter().map(|&v| v as f64).collect();
            let w = crate::transform::forward(&f).unwrap();
            for (i, &c) in sc.coeffs.iter().enumerate() {
                prop_assert_eq!(c as f64, w[i] * sc.scale as f64, "coeff {}", i);
            }
        }

        /// Same for the 2-D nonstandard transform.
        #[test]
        fn scaled_nd_always_exact(side_exp in 0u32..=3,
                                  vals in proptest::collection::vec(-500i64..500, 64)) {
            let side = 1usize << side_exp;
            let shape = NdShape::hypercube(side, 2).unwrap();
            let data: Vec<i64> = vals.into_iter().take(shape.len()).collect();
            prop_assume!(data.len() == shape.len());
            let sc = forward_scaled_nd(&shape, &data).unwrap();
            let f: Vec<f64> = data.iter().map(|&v| v as f64).collect();
            let w = nonstandard::forward(&NdArray::new(shape, f).unwrap()).unwrap();
            for (i, &c) in sc.coeffs.iter().enumerate() {
                prop_assert_eq!(c as f64, w.data()[i] * sc.scale as f64, "coeff {}", i);
            }
        }
    }
}
