//! One-dimensional Haar error tree (§2.1, Figure 1(a)).
//!
//! The error tree is the hierarchical view of the wavelet transform used by
//! every thresholding algorithm in the paper. Internal node `c_j`
//! (`0 <= j < N`) carries the unnormalized coefficient `W_A[j]`; leaf `d_i`
//! carries the `i`-th data value. The root `c_0` (the overall average) has a
//! single child `c_1`; every other internal node `c_j` has children
//! `c_{2j}` and `c_{2j+1}` (which are leaves `d_{2j-N}` and `d_{2j+1-N}`
//! once `2j >= N`).
//!
//! Key property (Equation (1)): a data value is reconstructed from exactly
//! the coefficients on its root path,
//! `d_i = Σ_{c_j ∈ path(d_i)} sign_{ij} · c_j`, where `sign_{ij} = +1` if
//! `d_i` lies in the left child subtree of `c_j` or `j = 0`, and `-1`
//! otherwise. An ancestor coefficient therefore contributes with a *fixed*
//! sign to every leaf of a given subtree — the observation underlying the
//! incoming-error dynamic programs of §3.
//!
//! ## Layout
//!
//! The tree is stored struct-of-arrays: four flat slices indexed by `j`
//! (coefficient values, levels, support starts, support ends), all
//! precomputed once at construction. Structural queries are single
//! branch-free slice reads, and the hot consumers — the branch-and-bound
//! kernel's leaf evaluations and [`ErrorTree1d::subtree_leaf_max`] —
//! become linear scans over contiguous memory instead of per-node
//! formula re-derivation. The slices are exposed read-only
//! ([`ErrorTree1d::coeffs`], [`ErrorTree1d::levels_u8`],
//! [`ErrorTree1d::support_starts`], [`ErrorTree1d::support_ends`]); the
//! per-node accessors keep their historical signatures and read from
//! the same arrays, so the two views can never diverge.

use crate::{is_pow2, log2_exact, transform, HaarError};
use wsyn_core::{narrow_u32, narrow_u8};

/// The two children of an internal error-tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Children {
    /// Root case (`j = 0`, `N > 1`): a single coefficient child, `c_1`.
    RootCoeff(usize),
    /// Root case (`j = 0`, `N = 1`): a single leaf child, `d_0`.
    RootLeaf(usize),
    /// Two coefficient children `(c_{2j}, c_{2j+1})`.
    Coeffs(usize, usize),
    /// Two leaf children `(d_{2j-N}, d_{2j+1-N})` (data indices).
    Leaves(usize, usize),
}

/// One-dimensional Haar error tree over `N = 2^m` data values.
///
/// Struct-of-arrays storage (module docs): the unnormalized coefficient
/// array plus precomputed per-node levels and support bounds as flat
/// slices. All structural queries are `O(1)` slice reads; paths are
/// `O(log N)`.
///
/// Invariants (established at construction, relied on by the slice
/// consumers):
///
/// * all four arrays have length `N`, a power of two with `N < 2^32`;
/// * `levels[j] == transform::level(j)` (so `levels` is non-decreasing
///   and `levels[j] ≤ 31`);
/// * `support_starts[j]..support_ends[j]` is exactly the §2.1 support
///   of `c_j`: `0..N` for `j ≤ 1`, else
///   `(j - 2^l)·N/2^l .. (j - 2^l + 1)·N/2^l` with `l = levels[j]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorTree1d {
    coeffs: Vec<f64>,
    levels: Vec<u8>,
    sup_start: Vec<u32>,
    sup_end: Vec<u32>,
}

impl ErrorTree1d {
    /// Builds the error tree for a data vector (computes the transform).
    ///
    /// # Errors
    /// Propagates [`HaarError`] for empty / non-power-of-two input.
    pub fn from_data(data: &[f64]) -> Result<Self, HaarError> {
        Self::from_coeffs(transform::forward(data)?)
    }

    /// Wraps an existing unnormalized coefficient array and precomputes
    /// the structural SoA slices.
    ///
    /// # Errors
    /// [`HaarError`] if the length is empty or not a power of two.
    pub fn from_coeffs(coeffs: Vec<f64>) -> Result<Self, HaarError> {
        if coeffs.is_empty() {
            return Err(HaarError::Empty);
        }
        let n = coeffs.len();
        if !is_pow2(n) {
            return Err(HaarError::NotPowerOfTwo { len: n });
        }
        let n_u32 = narrow_u32(n);
        let mut levels = Vec::with_capacity(n);
        let mut sup_start = Vec::with_capacity(n);
        let mut sup_end = Vec::with_capacity(n);
        for j in 0..n {
            if j <= 1 {
                // c_0 and c_1 sit at level 0 and support the whole domain.
                levels.push(0);
                sup_start.push(0);
                sup_end.push(n_u32);
            } else {
                let l = transform::level(j);
                let width = n >> l;
                let pos = j - (1usize << l);
                levels.push(narrow_u8(l as usize));
                sup_start.push(narrow_u32(pos * width));
                sup_end.push(narrow_u32((pos + 1) * width));
            }
        }
        Ok(Self {
            coeffs,
            levels,
            sup_start,
            sup_end,
        })
    }

    /// Domain size `N` (number of data values == number of coefficients).
    #[inline]
    pub fn n(&self) -> usize {
        self.coeffs.len()
    }

    /// Number of resolution levels, `log2 N`.
    #[inline]
    pub fn levels(&self) -> u32 {
        log2_exact(self.n())
    }

    /// The unnormalized coefficient array `W_A` (SoA slice).
    #[inline]
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Per-node resolution levels as a flat slice (`levels_u8()[j] ==
    /// transform::level(j)`, which fits a `u8` for any `N < 2^32`).
    #[inline]
    pub fn levels_u8(&self) -> &[u8] {
        &self.levels
    }

    /// Per-node support starts as a flat slice
    /// (`support_starts()[j] == support(j).start`).
    #[inline]
    pub fn support_starts(&self) -> &[u32] {
        &self.sup_start
    }

    /// Per-node support ends as a flat slice
    /// (`support_ends()[j] == support(j).end`).
    #[inline]
    pub fn support_ends(&self) -> &[u32] {
        &self.sup_end
    }

    /// Value of coefficient `c_j`.
    #[inline]
    pub fn coeff(&self, j: usize) -> f64 {
        self.coeffs[j]
    }

    /// Resolution level of coefficient `c_j` (see [`transform::level`]).
    #[inline]
    pub fn level(&self, j: usize) -> u32 {
        u32::from(self.levels[j])
    }

    /// Children of internal node `c_j`.
    ///
    /// # Panics
    /// Panics if `j >= N` (leaves have no children).
    pub fn children(&self, j: usize) -> Children {
        let n = self.n();
        assert!(j < n, "c_{j} is not an internal node (N = {n})");
        if j == 0 {
            return if n == 1 {
                Children::RootLeaf(0)
            } else {
                Children::RootCoeff(1)
            };
        }
        let l = 2 * j;
        if l < n {
            Children::Coeffs(l, l + 1)
        } else {
            Children::Leaves(l - n, l + 1 - n)
        }
    }

    /// Parent coefficient index of internal node `c_j` (`j >= 1`).
    ///
    /// `c_1`'s parent is `c_0`; otherwise `parent(j) = j / 2`.
    #[inline]
    pub fn parent(&self, j: usize) -> usize {
        debug_assert!(j >= 1 && j < self.n());
        if j == 1 {
            0
        } else {
            j / 2
        }
    }

    /// Support region of coefficient `c_j`: the contiguous range of data
    /// indices whose reconstruction involves `c_j`.
    ///
    /// `c_0` and `c_1` support the whole domain; `c_j` (`j >= 2`) at level
    /// `l` supports `(j - 2^l) * N/2^l .. (j - 2^l + 1) * N/2^l`. A pair
    /// of branch-free SoA reads.
    #[inline]
    pub fn support(&self, j: usize) -> std::ops::Range<usize> {
        self.sup_start[j] as usize..self.sup_end[j] as usize
    }

    /// Sign of coefficient `c_j`'s contribution to data value `d_i`
    /// (Equation (1)): `+1.0`, `-1.0`, or `0.0` when `d_i` is outside the
    /// support of `c_j`.
    pub fn sign(&self, j: usize, i: usize) -> f64 {
        let sup = self.support(j);
        if !sup.contains(&i) {
            return 0.0;
        }
        if j == 0 {
            return 1.0;
        }
        let mid = sup.start + (sup.end - sup.start) / 2;
        if i < mid {
            1.0
        } else {
            -1.0
        }
    }

    /// Non-allocating ancestor walk of leaf `d_i`: yields the same
    /// `(coefficient index, sign)` pairs as [`Self::path`], root first,
    /// without building a `Vec`. This is the form the per-query
    /// consumers (AQP point queries, streaming point updates) iterate.
    ///
    /// # Panics
    /// Panics if `i >= N`.
    pub fn path_iter(&self, i: usize) -> PathIter {
        let n = self.n();
        assert!(i < n, "leaf index {i} out of range (N = {n})");
        PathIter {
            i,
            m: self.levels(),
            pos: 0,
        }
    }

    /// Ancestor path of leaf `d_i`: the coefficient indices on the path from
    /// the root down to (and including) the finest coefficient covering
    /// `d_i`, together with the contribution sign of each. Ordered root
    /// first. Length is `log2 N + 1` (or 1 when `N = 1`).
    ///
    /// Unlike the paper's `path(u)` (which drops zero coefficients because
    /// they can never be usefully retained), this method returns *all*
    /// structural ancestors; filter on [`Self::coeff`] if needed. Allocates
    /// — prefer [`Self::path_iter`] on hot paths.
    pub fn path(&self, i: usize) -> Vec<(usize, f64)> {
        self.path_iter(i).collect()
    }

    /// Reconstructs data value `d_i` via Equation (1) (`O(log N)`).
    pub fn reconstruct(&self, i: usize) -> f64 {
        self.path_iter(i).map(|(j, s)| s * self.coeffs[j]).sum()
    }

    /// Reconstructs the full data vector (`O(N)` via the inverse transform).
    pub fn reconstruct_all(&self) -> Vec<f64> {
        let mut out = self.coeffs.clone();
        transform::inverse_in_place(&mut out);
        out
    }

    /// Reconstructs data value `d_i` using only a retained subset of
    /// coefficients, supplied as a predicate over coefficient indices.
    /// Dropped coefficients are treated as zero (§2.3).
    pub fn reconstruct_with<F: Fn(usize) -> bool>(&self, i: usize, retained: F) -> f64 {
        self.path_iter(i)
            .filter(|&(j, _)| retained(j))
            .map(|(j, s)| s * self.coeffs[j])
            .sum()
    }

    /// The data (leaf) indices underneath internal node `c_j` — identical to
    /// [`Self::support`] for `j >= 1`, and the whole domain for `j = 0`.
    #[inline]
    pub fn leaves_under(&self, j: usize) -> std::ops::Range<usize> {
        self.support(j)
    }

    /// Per-node subtree maxima of an arbitrary per-leaf value, in the
    /// combined-array indexing of the incoming-error DPs: slot `n + i`
    /// holds `leaf_vals[i]` itself, slot `j` (`1 <= j < n`) holds the
    /// maximum of `leaf_vals` over `c_j`'s support, and slot `0` mirrors
    /// slot `1` (the root's single child covers the whole domain).
    ///
    /// One `O(N)` bottom-up pass over the flat combined array — a
    /// branch-light linear scan, computed once per metric. The
    /// branch-and-bound kernel divides incoming error magnitudes by
    /// these maxima to get admissible per-subtree lower bounds: a leaf's
    /// contribution is `|e| / denom`, so dividing by the subtree's
    /// *largest* denominator never overestimates any leaf's error.
    ///
    /// # Panics
    /// Panics when `leaf_vals.len() != self.n()`.
    #[must_use]
    pub fn subtree_leaf_max(&self, leaf_vals: &[f64]) -> Vec<f64> {
        let n = self.n();
        assert_eq!(leaf_vals.len(), n, "one value per leaf");
        let mut out = vec![0.0; 2 * n];
        out[n..].copy_from_slice(leaf_vals);
        for j in (1..n).rev() {
            // Children of c_j live at combined slots 2j and 2j+1
            // whether they are coefficients (2j < n) or leaves
            // (slot n + (2j - n) == 2j).
            let l = out[2 * j];
            let r = out[2 * j + 1];
            out[j] = if l >= r { l } else { r };
        }
        // Root: single child c_1 (or leaf slot 1 == n + 0 when n == 1).
        out[0] = out[1];
        out
    }
}

/// Iterator over the ancestor path of one leaf (see
/// [`ErrorTree1d::path_iter`]): `(coefficient index, sign)` pairs, root
/// first, `log2 N + 1` items.
#[derive(Debug, Clone)]
pub struct PathIter {
    /// Leaf (data) index being walked.
    i: usize,
    /// `log2 N`.
    m: u32,
    /// Next emission: `0` is the root, `1 + l` is level `l`'s covering
    /// coefficient.
    pos: u32,
}

impl Iterator for PathIter {
    type Item = (usize, f64);

    fn next(&mut self) -> Option<(usize, f64)> {
        if self.pos == 0 {
            self.pos = 1;
            return Some((0, 1.0));
        }
        let l = self.pos - 1;
        if l >= self.m {
            return None;
        }
        self.pos += 1;
        // At level l the covering coefficient is 2^l + (i >> (m - l))
        // and the sign is determined by bit (m - l - 1).
        let j = (1usize << l) + (self.i >> (self.m - l));
        let sign = if (self.i >> (self.m - l - 1)) & 1 == 0 {
            1.0
        } else {
            -1.0
        };
        Some((j, sign))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.m + 1 - self.pos.min(self.m + 1)) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for PathIter {}

#[cfg(test)]
mod tests {
    #![allow(clippy::needless_range_loop)] // index loops read clearer in assertions
    use super::*;

    const EXAMPLE: [f64; 8] = [2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0];

    fn tree() -> ErrorTree1d {
        ErrorTree1d::from_data(&EXAMPLE).unwrap()
    }

    #[test]
    fn paper_example_d4_equals_c0_minus_c1_plus_c6() {
        // §2.1: d_4 = c_0 - c_1 + c_6 = 11/4 + 5/4 - 1 = 3.
        let t = tree();
        let path = t.path(4);
        let indices: Vec<usize> = path.iter().map(|&(j, _)| j).collect();
        assert_eq!(indices, vec![0, 1, 3, 6]);
        let signs: Vec<f64> = path.iter().map(|&(_, s)| s).collect();
        assert_eq!(signs, vec![1.0, -1.0, 1.0, 1.0]); // c_3 is 0 in the example
        assert_eq!(t.reconstruct(4), 3.0);
    }

    #[test]
    fn reconstruct_matches_inverse_transform() {
        let t = tree();
        let all = t.reconstruct_all();
        assert_eq!(all, EXAMPLE.to_vec());
        for i in 0..8 {
            assert_eq!(t.reconstruct(i), EXAMPLE[i], "d_{i}");
        }
    }

    #[test]
    fn children_structure_matches_figure_1a() {
        let t = tree();
        assert_eq!(t.children(0), Children::RootCoeff(1));
        assert_eq!(t.children(1), Children::Coeffs(2, 3));
        assert_eq!(t.children(2), Children::Coeffs(4, 5));
        assert_eq!(t.children(3), Children::Coeffs(6, 7));
        assert_eq!(t.children(4), Children::Leaves(0, 1));
        assert_eq!(t.children(7), Children::Leaves(6, 7));
    }

    #[test]
    fn parent_inverts_children() {
        let t = tree();
        for j in 1..8 {
            let p = t.parent(j);
            match t.children(p) {
                Children::RootCoeff(c) => assert_eq!(c, j),
                Children::Coeffs(l, r) => assert!(j == l || j == r),
                _ => panic!("unexpected"),
            }
        }
    }

    #[test]
    fn supports() {
        let t = tree();
        assert_eq!(t.support(0), 0..8);
        assert_eq!(t.support(1), 0..8);
        assert_eq!(t.support(2), 0..4);
        assert_eq!(t.support(3), 4..8);
        assert_eq!(t.support(6), 4..6);
        assert_eq!(t.support(7), 6..8);
    }

    #[test]
    fn soa_slices_expose_the_same_structure() {
        let t = tree();
        assert_eq!(t.levels_u8(), &[0, 0, 1, 1, 2, 2, 2, 2]);
        assert_eq!(t.support_starts(), &[0, 0, 0, 4, 0, 2, 4, 6]);
        assert_eq!(t.support_ends(), &[8, 8, 4, 8, 2, 4, 6, 8]);
        for j in 0..8 {
            assert_eq!(t.level(j), transform::level(j), "c_{j}");
        }
    }

    #[test]
    fn signs_flip_at_support_midpoint() {
        let t = tree();
        assert_eq!(t.sign(1, 0), 1.0);
        assert_eq!(t.sign(1, 3), 1.0);
        assert_eq!(t.sign(1, 4), -1.0);
        assert_eq!(t.sign(6, 4), 1.0);
        assert_eq!(t.sign(6, 5), -1.0);
        assert_eq!(t.sign(6, 0), 0.0); // outside support
        for i in 0..8 {
            assert_eq!(t.sign(0, i), 1.0); // root always +
        }
    }

    #[test]
    fn single_value_tree() {
        let t = ErrorTree1d::from_data(&[5.0]).unwrap();
        assert_eq!(t.children(0), Children::RootLeaf(0));
        assert_eq!(t.path(0), vec![(0, 1.0)]);
        assert_eq!(t.reconstruct(0), 5.0);
        assert_eq!(t.levels_u8(), &[0]);
        assert_eq!(t.support_starts(), &[0]);
        assert_eq!(t.support_ends(), &[1]);
    }

    #[test]
    fn reconstruct_with_subset() {
        let t = tree();
        // Retaining only c_0 reconstructs every value as the overall average.
        for i in 0..8 {
            assert_eq!(t.reconstruct_with(i, |j| j == 0), 11.0 / 4.0);
        }
        // Retaining everything reconstructs exactly.
        for i in 0..8 {
            assert_eq!(t.reconstruct_with(i, |_| true), EXAMPLE[i]);
        }
        // Retaining nothing reconstructs zero.
        for i in 0..8 {
            assert_eq!(t.reconstruct_with(i, |_| false), 0.0);
        }
    }

    #[test]
    fn path_lengths_are_logn_plus_one() {
        for m in 0..6u32 {
            let n = 1usize << m;
            let t = ErrorTree1d::from_coeffs(vec![1.0; n]).unwrap();
            for i in 0..n {
                assert_eq!(t.path(i).len(), m as usize + 1);
                let it = t.path_iter(i);
                assert_eq!(it.len(), m as usize + 1); // ExactSizeIterator
            }
        }
    }

    #[test]
    fn from_coeffs_validates() {
        assert!(ErrorTree1d::from_coeffs(vec![]).is_err());
        assert!(ErrorTree1d::from_coeffs(vec![1.0; 3]).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn pow2_vec() -> impl Strategy<Value = Vec<f64>> {
        (0u32..=7).prop_flat_map(|m| proptest::collection::vec(-1e5f64..1e5, 1usize << m))
    }

    /// Support of `c_j` by the §2.1 formula — the pre-SoA per-call
    /// computation, kept as the oracle for the precomputed slices.
    fn formula_support(n: usize, j: usize) -> std::ops::Range<usize> {
        if j <= 1 {
            return 0..n;
        }
        let l = transform::level(j);
        let width = n >> l;
        let pos = j - (1 << l);
        pos * width..(pos + 1) * width
    }

    proptest! {
        #[test]
        fn equation_1_reconstruction_matches_inverse(data in pow2_vec()) {
            let t = ErrorTree1d::from_data(&data).unwrap();
            let all = t.reconstruct_all();
            for i in 0..data.len() {
                let via_path = t.reconstruct(i);
                prop_assert!((via_path - all[i]).abs() <= 1e-6 * (1.0 + all[i].abs()));
                prop_assert!((via_path - data[i]).abs() <= 1e-6 * (1.0 + data[i].abs()));
            }
        }

        #[test]
        fn sign_function_agrees_with_path(data in pow2_vec()) {
            let t = ErrorTree1d::from_data(&data).unwrap();
            for i in 0..data.len() {
                for (j, s) in t.path(i) {
                    prop_assert_eq!(t.sign(j, i), s);
                }
            }
        }

        #[test]
        fn soa_layout_reproduces_formula_accessors(data in pow2_vec()) {
            // The SoA arrays must be indistinguishable from the old
            // per-call formula layout: level via transform::level,
            // support via the §2.1 arithmetic, coeff via the transform.
            let t = ErrorTree1d::from_data(&data).unwrap();
            let n = data.len();
            let forward = transform::forward(&data).unwrap();
            prop_assert_eq!(t.coeffs(), forward.as_slice());
            for (j, &w) in forward.iter().enumerate() {
                prop_assert_eq!(t.coeff(j).to_bits(), w.to_bits());
                prop_assert_eq!(t.level(j), transform::level(j), "level c_{}", j);
                prop_assert_eq!(u32::from(t.levels_u8()[j]), transform::level(j));
                let sup = formula_support(n, j);
                prop_assert_eq!(t.support(j), sup.clone(), "support c_{}", j);
                prop_assert_eq!(t.support_starts()[j] as usize, sup.start);
                prop_assert_eq!(t.support_ends()[j] as usize, sup.end);
            }
        }

        #[test]
        fn path_iter_matches_path(data in pow2_vec()) {
            let t = ErrorTree1d::from_data(&data).unwrap();
            for i in 0..data.len() {
                let collected: Vec<(usize, f64)> = t.path_iter(i).collect();
                prop_assert_eq!(collected, t.path(i));
            }
        }

        #[test]
        fn subtree_leaf_max_matches_naive_support_scan(data in pow2_vec()) {
            let t = ErrorTree1d::from_data(&data).unwrap();
            let n = data.len();
            let vals: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.37 % 5.0).collect();
            let got = t.subtree_leaf_max(&vals);
            prop_assert_eq!(got.len(), 2 * n);
            for (i, &v) in vals.iter().enumerate() {
                prop_assert_eq!(got[n + i], v);
            }
            for (j, &combined) in got.iter().enumerate().take(n) {
                let naive = t
                    .support(j)
                    .map(|i| vals[i])
                    .fold(f64::NEG_INFINITY, f64::max);
                prop_assert_eq!(combined, naive, "node {}", j);
            }
        }

        #[test]
        fn ancestors_have_constant_sign_over_subtrees(data in pow2_vec()) {
            // The property the incoming-error DP relies on: an ancestor's
            // sign is constant over all leaves of each child subtree.
            let t = ErrorTree1d::from_data(&data).unwrap();
            let n = data.len();
            for j in 1..n {
                let sup = t.support(j);
                let mid = sup.start + (sup.end - sup.start) / 2;
                for i in sup.start..mid {
                    prop_assert_eq!(t.sign(j, i), 1.0);
                }
                for i in mid..sup.end {
                    prop_assert_eq!(t.sign(j, i), -1.0);
                }
            }
        }
    }
}
