//! Nonstandard multi-dimensional Haar decomposition (§2.2, Figure 1(b)).
//!
//! At every resolution level the algorithm performs one unnormalized
//! pairwise averaging/differencing step (`avg = (a+b)/2`, `detail =
//! (a-b)/2`) along **each** dimension over the current low-pass hypercube,
//! then recurses on the averages. For a `2^m`-per-side, `D`-dimensional
//! array, the detail coefficients produced at level `l` (coarsest = 0)
//! occupy the region `[0, 2^{l+1})^D \ [0, 2^l)^D` of the coefficient
//! array, and the overall average lands at the origin.
//!
//! Coefficient semantics: the coefficient at position `q + b·2^l`
//! (node position `q ∈ [0, 2^l)^D`, offset mask `b ∈ {0,1}^D \ {0}`)
//! contributes to data cell `x` inside its support hypercube with sign
//! `Π_{k : b_k = 1} (+1 if x_k in the low half along dim k, else -1)` —
//! exactly the quadrant-sign structure of Figure 1(b).

use super::{NdArray, NdShape};
use crate::{log2_exact, HaarError};

/// Computes the nonstandard Haar decomposition of `data`, returning the
/// coefficient array (same shape).
///
/// # Errors
/// [`HaarError::UnequalSides`] unless the shape is a hypercube (all sides
/// equal powers of two).
pub fn forward(data: &NdArray) -> Result<NdArray, HaarError> {
    let mut out = data.clone();
    forward_in_place(&mut out)?;
    Ok(out)
}

/// In-place nonstandard decomposition.
///
/// # Errors
/// [`HaarError::UnequalSides`] unless the shape is a hypercube.
pub fn forward_in_place(arr: &mut NdArray) -> Result<(), HaarError> {
    if !arr.shape().is_hypercube() {
        return Err(HaarError::UnequalSides);
    }
    let side = arr.shape().sides()[0];
    let d = arr.shape().ndims();
    let shape = arr.shape().clone();
    let mut size = side;
    while size > 1 {
        for dim in 0..d {
            step_along(arr.data_mut(), &shape, dim, size, Direction::Forward);
        }
        size /= 2;
    }
    Ok(())
}

/// Reconstructs the data array from nonstandard coefficients.
///
/// # Errors
/// [`HaarError::UnequalSides`] unless the shape is a hypercube.
pub fn inverse(coeffs: &NdArray) -> Result<NdArray, HaarError> {
    let mut out = coeffs.clone();
    inverse_in_place(&mut out)?;
    Ok(out)
}

/// In-place inverse of [`forward_in_place`].
///
/// # Errors
/// [`HaarError::UnequalSides`] unless the shape is a hypercube.
pub fn inverse_in_place(arr: &mut NdArray) -> Result<(), HaarError> {
    if !arr.shape().is_hypercube() {
        return Err(HaarError::UnequalSides);
    }
    let side = arr.shape().sides()[0];
    let d = arr.shape().ndims();
    let shape = arr.shape().clone();
    let levels = log2_exact(side);
    for l in (0..levels).rev() {
        let size = side >> l;
        for dim in (0..d).rev() {
            step_along(arr.data_mut(), &shape, dim, size, Direction::Inverse);
        }
    }
    Ok(())
}

#[derive(Clone, Copy)]
enum Direction {
    Forward,
    Inverse,
}

/// Applies one pairwise Haar step (or its inverse) along `dim`, restricted
/// to the box `[0, size)` in every dimension of the full array.
///
/// Forward: `(a, b) -> (avg, detail)` with `avg` stored in the low half and
/// `detail` in the high half along `dim`. Inverse reverses this.
fn step_along(data: &mut [f64], shape: &NdShape, dim: usize, size: usize, dir: Direction) {
    let d = shape.ndims();
    let half = size / 2;
    // Stride of `dim` in the flat row-major buffer.
    let mut stride = 1usize;
    for k in (dim + 1)..d {
        stride *= shape.sides()[k];
    }
    // Iterate over all positions in the box with coordinate 0..half along
    // `dim` and 0..size along every other dim.
    let mut coords = vec![0usize; d];
    let mut scratch_lo = vec![0.0f64; half];
    let mut scratch_hi = vec![0.0f64; half];
    loop {
        // Process the 1-D line through `coords` along `dim`.
        let base = shape.linearize(&coords);
        match dir {
            Direction::Forward => {
                for i in 0..half {
                    let a = data[base + 2 * i * stride];
                    let b = data[base + (2 * i + 1) * stride];
                    scratch_lo[i] = (a + b) / 2.0;
                    scratch_hi[i] = (a - b) / 2.0;
                }
            }
            Direction::Inverse => {
                for i in 0..half {
                    let avg = data[base + i * stride];
                    let detail = data[base + (half + i) * stride];
                    scratch_lo[i] = avg + detail; // new low element (2i)
                    scratch_hi[i] = avg - detail; // new high element (2i+1)
                }
            }
        }
        match dir {
            Direction::Forward => {
                for i in 0..half {
                    data[base + i * stride] = scratch_lo[i];
                    data[base + (half + i) * stride] = scratch_hi[i];
                }
            }
            Direction::Inverse => {
                for i in 0..half {
                    data[base + 2 * i * stride] = scratch_lo[i];
                    data[base + (2 * i + 1) * stride] = scratch_hi[i];
                }
            }
        }
        // Advance coords over all dims except `dim`, bounded by `size`.
        let mut k = d;
        loop {
            if k == 0 {
                return;
            }
            k -= 1;
            if k == dim {
                continue;
            }
            coords[k] += 1;
            if coords[k] < size {
                break;
            }
            coords[k] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr2(side: usize, vals: Vec<f64>) -> NdArray {
        NdArray::new(NdShape::hypercube(side, 2).unwrap(), vals).unwrap()
    }

    #[test]
    fn two_by_two_block_transform() {
        // [[a, b], [c, d]] with row-major [a, b, c, d].
        let (a, b, c, d) = (5.0, 1.0, 3.0, 7.0);
        let w = forward(&arr2(2, vec![a, b, c, d])).unwrap();
        let wd = w.data();
        assert_eq!(wd[0], (a + b + c + d) / 4.0); // overall average
        assert_eq!(wd[1], (a - b + c - d) / 4.0); // detail along dim 1
        assert_eq!(wd[2], (a + b - c - d) / 4.0); // detail along dim 0
        assert_eq!(wd[3], (a - b - c + d) / 4.0); // diagonal detail
    }

    #[test]
    fn roundtrip_4x4() {
        let vals: Vec<f64> = (0..16).map(|i| f64::from(i * i % 7) - 3.0).collect();
        let original = arr2(4, vals);
        let w = forward(&original).unwrap();
        let back = inverse(&w).unwrap();
        for (x, y) in original.data().iter().zip(back.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_3d() {
        let shape = NdShape::hypercube(4, 3).unwrap();
        let vals: Vec<f64> = (0..shape.len())
            .map(|i| ((i * 31 + 7) % 13) as f64)
            .collect();
        let original = NdArray::new(shape, vals).unwrap();
        let w = forward(&original).unwrap();
        let back = inverse(&w).unwrap();
        for (x, y) in original.data().iter().zip(back.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_array_single_coefficient() {
        let original = arr2(8, vec![2.5; 64]);
        let w = forward(&original).unwrap();
        assert_eq!(w.data()[0], 2.5);
        assert!(w.data()[1..].iter().all(|&c| c == 0.0));
    }

    #[test]
    fn rejects_non_hypercube() {
        let shape = NdShape::new(vec![2, 4]).unwrap();
        let a = NdArray::zeros(shape);
        assert_eq!(forward(&a).unwrap_err(), HaarError::UnequalSides);
        assert_eq!(inverse(&a).unwrap_err(), HaarError::UnequalSides);
    }

    #[test]
    fn one_dimensional_case_matches_1d_transform() {
        let vals = vec![2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0];
        let shape = NdShape::new(vec![8]).unwrap();
        let w = forward(&NdArray::new(shape, vals.clone()).unwrap()).unwrap();
        let w1d = crate::transform::forward(&vals).unwrap();
        assert_eq!(w.data(), &w1d[..]);
    }

    #[test]
    fn quadrant_sign_structure_matches_figure_1b() {
        // Verify the sign pattern of each of the 16 basis functions of a
        // 4x4 nonstandard decomposition by transforming indicator arrays:
        // the inverse transform of a single unit coefficient is the basis
        // function; its sign pattern must follow the quadrant rule.
        let shape = NdShape::hypercube(4, 2).unwrap();
        let m = 2u32;
        for pos in 0..16usize {
            let mut coeffs = NdArray::zeros(shape.clone());
            coeffs.data_mut()[pos] = 1.0;
            let basis = inverse(&coeffs).unwrap();
            let coord = shape.delinearize(pos);
            if pos == 0 {
                // Overall average: +1 everywhere.
                assert!(basis.data().iter().all(|&v| v == 1.0));
                continue;
            }
            // Determine level l and offset mask b of this coefficient: the
            // unique l with all coords < 2^{l+1} and at least one >= 2^l.
            let l = (0..m as usize)
                .find(|&ll| {
                    coord.iter().all(|&c| c < (1usize << (ll + 1)))
                        && coord.iter().any(|&c| c >= (1usize << ll))
                })
                .unwrap();
            let q: Vec<usize> = coord.iter().map(|&c| c & ((1 << l) - 1)).collect();
            let b: Vec<bool> = coord.iter().map(|&c| c >= (1 << l)).collect();
            let node_width = 4usize >> l; // support side
            for x0 in 0..4usize {
                for x1 in 0..4usize {
                    let x = [x0, x1];
                    let inside = (0..2).all(|k| x[k] / node_width == q[k]);
                    let v = basis.get(&x);
                    if !inside {
                        assert_eq!(v, 0.0, "pos {pos} outside support");
                    } else {
                        let mut sign = 1.0;
                        for k in 0..2 {
                            if b[k] {
                                let low = (x[k] % node_width) < node_width / 2;
                                if !low {
                                    sign = -sign;
                                }
                            }
                        }
                        assert_eq!(v, sign, "pos {pos} cell {x:?}");
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip_2d(side_exp in 0u32..=4, seed_vals in proptest::collection::vec(-1e4f64..1e4, 256)) {
            let side = 1usize << side_exp;
            let shape = NdShape::hypercube(side, 2).unwrap();
            let vals: Vec<f64> = seed_vals.into_iter().take(shape.len()).collect();
            prop_assume!(vals.len() == shape.len());
            let original = NdArray::new(shape, vals).unwrap();
            let w = forward(&original).unwrap();
            let back = inverse(&w).unwrap();
            for (x, y) in original.data().iter().zip(back.data()) {
                prop_assert!((x - y).abs() <= 1e-7 * (1.0 + x.abs()));
            }
        }

        #[test]
        fn linearity_2d(vals_a in proptest::collection::vec(-1e4f64..1e4, 16),
                        vals_b in proptest::collection::vec(-1e4f64..1e4, 16)) {
            let shape = NdShape::hypercube(4, 2).unwrap();
            let wa = forward(&NdArray::new(shape.clone(), vals_a.clone()).unwrap()).unwrap();
            let wb = forward(&NdArray::new(shape.clone(), vals_b.clone()).unwrap()).unwrap();
            let sum: Vec<f64> = vals_a.iter().zip(&vals_b).map(|(x, y)| x + y).collect();
            let ws = forward(&NdArray::new(shape, sum).unwrap()).unwrap();
            for i in 0..16 {
                prop_assert!((ws.data()[i] - (wa.data()[i] + wb.data()[i])).abs() < 1e-9);
            }
        }
    }
}
