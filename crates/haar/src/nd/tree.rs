//! Multi-dimensional Haar error tree (§2.2, Figure 2).
//!
//! In the `D`-dimensional error tree over a `2^m`-per-side hypercube:
//!
//! * the **root** holds the single overall-average coefficient and has one
//!   child (the level-0 node);
//! * every **inner node** at level `l ∈ [0, m)` corresponds to a hypercubic
//!   support region of side `2^{m-l}` and holds the `2^D - 1` detail
//!   coefficients sharing that region (those at array positions
//!   `q + b·2^l` for offset masks `b ∈ {0,1}^D \ {0}`, where
//!   `q ∈ [0, 2^l)^D` is the node position);
//! * an inner node's `2^D` children are the quadrants of its support:
//!   nodes `(l+1, 2q + δ)` for `δ ∈ {0,1}^D`, or individual data cells when
//!   `l = m - 1`;
//! * coefficient `b` contributes to quadrant `δ` with sign
//!   `(-1)^popcount(b & δ)` — Figure 1(b)'s quadrant-sign rule.
//!
//! For `D = 1` this degenerates exactly to the one-dimensional error tree of
//! [`crate::tree1d`], which the tests verify.

use wsyn_core::{narrow_u32, narrow_u8};

use super::{nonstandard, NdArray};
use crate::{log2_exact, HaarError};

/// Reference to an inner error-tree node: resolution `level` (0 =
/// coarsest) and row-major `index` within the `[0, 2^level)^D` grid of
/// nodes at that level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef {
    /// Resolution level, `0..m`.
    pub level: u8,
    /// Row-major node index within the level grid.
    pub index: u32,
}

impl NodeRef {
    /// Packs the reference into a single `u64` (for memo keys).
    #[inline]
    pub fn key(self) -> u64 {
        (u64::from(self.level) << 56) | u64::from(self.index)
    }

    /// Packs the node reference together with a 64-bit incoming-error
    /// payload (float bits or a sign-extended integer) into the `u128`
    /// state key the DP memo tables use: node key in the high half,
    /// error bits in the low half.
    #[inline]
    pub fn state_key(self, error_bits: u64) -> u128 {
        (u128::from(self.key()) << 64) | u128::from(error_bits)
    }
}

/// Children of an error-tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeChildren {
    /// Inner-node children (the `2^D` quadrants), ordered by quadrant mask
    /// `δ = 0..2^D` (bit `k` of `δ` selects the high half along dim `k`).
    Nodes(Vec<NodeRef>),
    /// Data-cell children (linear cell indices), same quadrant order.
    Cells(Vec<usize>),
}

/// One coefficient stored in an inner node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeCoeff {
    /// Offset mask `b ∈ {0,1}^D \ {0}`: bit `k` set means the coefficient
    /// sits at offset `2^level` along dimension `k`.
    pub bmask: u32,
    /// Linear position in the coefficient array.
    pub pos: usize,
    /// Unnormalized coefficient value.
    pub value: f64,
}

/// Multi-dimensional Haar error tree over a `2^m`-per-side hypercube.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorTreeNd {
    coeffs: NdArray,
    side: usize,
    m: u32,
    d: usize,
}

impl ErrorTreeNd {
    /// Builds the error tree for a data hypercube (computes the
    /// nonstandard transform).
    ///
    /// # Errors
    /// [`HaarError::UnequalSides`] unless the shape is a hypercube.
    pub fn from_data(data: &NdArray) -> Result<Self, HaarError> {
        let coeffs = nonstandard::forward(data)?;
        Self::from_coeffs(coeffs)
    }

    /// Wraps an existing nonstandard coefficient array.
    ///
    /// # Errors
    /// [`HaarError::UnequalSides`] unless the shape is a hypercube.
    pub fn from_coeffs(coeffs: NdArray) -> Result<Self, HaarError> {
        if !coeffs.shape().is_hypercube() {
            return Err(HaarError::UnequalSides);
        }
        let side = coeffs.shape().sides()[0];
        let d = coeffs.shape().ndims();
        let m = log2_exact(side);
        Ok(Self { coeffs, side, m, d })
    }

    /// Number of dimensions `D`.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.d
    }

    /// Side length `2^m` per dimension.
    #[inline]
    pub fn side(&self) -> usize {
        self.side
    }

    /// Number of resolution levels `m`.
    #[inline]
    pub fn levels(&self) -> u32 {
        self.m
    }

    /// Total number of cells `N = side^D`.
    #[inline]
    pub fn n(&self) -> usize {
        self.coeffs.shape().len()
    }

    /// The underlying nonstandard coefficient array.
    #[inline]
    pub fn coeffs(&self) -> &NdArray {
        &self.coeffs
    }

    /// The overall-average (root) coefficient and its linear position (0).
    #[inline]
    pub fn root_average(&self) -> f64 {
        self.coeffs.data()[0]
    }

    /// Number of inner nodes at `level`: `2^(level·D)`.
    #[inline]
    pub fn nodes_at_level(&self, level: u8) -> usize {
        1usize << (level as usize * self.d)
    }

    /// Iterates all inner nodes, coarsest level first.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeRef> + '_ {
        (0..narrow_u8(self.m as usize)).flat_map(move |level| {
            (0..narrow_u32(self.nodes_at_level(level))).map(move |index| NodeRef { level, index })
        })
    }

    /// Node position `q ∈ [0, 2^level)^D` from its row-major index.
    pub fn node_pos(&self, node: NodeRef) -> Vec<usize> {
        let grid = 1usize << node.level;
        let mut idx = node.index as usize;
        let mut q = vec![0usize; self.d];
        for k in (0..self.d).rev() {
            q[k] = idx % grid;
            idx /= grid;
        }
        q
    }

    /// Row-major node index from position `q` at `level`.
    pub fn node_index(&self, level: u8, q: &[usize]) -> NodeRef {
        let grid = 1usize << level;
        let mut idx = 0usize;
        for &c in q {
            debug_assert!(c < grid);
            idx = idx * grid + c;
        }
        NodeRef {
            level,
            index: narrow_u32(idx),
        }
    }

    /// The `2^D - 1` detail coefficients held by an inner node, ordered by
    /// offset mask `b = 1..2^D`.
    pub fn node_coeffs(&self, node: NodeRef) -> Vec<NodeCoeff> {
        let q = self.node_pos(node);
        let off = 1usize << node.level;
        let nb = 1u32 << self.d;
        let mut out = Vec::with_capacity(nb as usize - 1);
        let mut coord = vec![0usize; self.d];
        for bmask in 1..nb {
            for k in 0..self.d {
                coord[k] = q[k] + if (bmask >> k) & 1 == 1 { off } else { 0 };
            }
            let pos = self.coeffs.shape().linearize(&coord);
            out.push(NodeCoeff {
                bmask,
                pos,
                value: self.coeffs.data()[pos],
            });
        }
        out
    }

    /// Children of an inner node, ordered by quadrant mask `δ = 0..2^D`.
    pub fn children(&self, node: NodeRef) -> NodeChildren {
        let q = self.node_pos(node);
        let nq = 1usize << self.d;
        if u32::from(node.level) + 1 < self.m {
            let lvl = node.level + 1;
            let mut out = Vec::with_capacity(nq);
            let mut child_q = vec![0usize; self.d];
            for delta in 0..nq {
                for k in 0..self.d {
                    child_q[k] = 2 * q[k] + ((delta >> k) & 1);
                }
                out.push(self.node_index(lvl, &child_q));
            }
            NodeChildren::Nodes(out)
        } else {
            // level == m - 1 (or m == 0 handled by root_children): children
            // are the individual data cells of the 2-per-side support box.
            let mut out = Vec::with_capacity(nq);
            let mut cell = vec![0usize; self.d];
            for delta in 0..nq {
                for k in 0..self.d {
                    cell[k] = 2 * q[k] + ((delta >> k) & 1);
                }
                out.push(self.coeffs.shape().linearize(&cell));
            }
            NodeChildren::Cells(out)
        }
    }

    /// Children of the conceptual root node (holding the overall average).
    /// A single level-0 node, or the single data cell when `m = 0`.
    pub fn root_children(&self) -> NodeChildren {
        if self.m == 0 {
            NodeChildren::Cells(vec![0])
        } else {
            NodeChildren::Nodes(vec![NodeRef { level: 0, index: 0 }])
        }
    }

    /// Sign of coefficient `bmask`'s contribution to quadrant `delta`:
    /// `(-1)^popcount(bmask & delta)`.
    #[inline]
    pub fn child_sign(bmask: u32, delta: u32) -> f64 {
        if (bmask & delta).count_ones() % 2 == 0 {
            1.0
        } else {
            -1.0
        }
    }

    /// The inner nodes on the path from the root to data cell `x`
    /// (coarsest first; the conceptual root is not included).
    pub fn cell_path(&self, x: &[usize]) -> Vec<NodeRef> {
        debug_assert_eq!(x.len(), self.d);
        let mut out = Vec::with_capacity(self.m as usize);
        let mut q = vec![0usize; self.d];
        for l in 0..self.m {
            for k in 0..self.d {
                q[k] = x[k] >> (self.m - l);
            }
            out.push(self.node_index(narrow_u8(l as usize), &q));
        }
        out
    }

    /// Quadrant mask of cell `x` within the level-`l` node containing it:
    /// bit `k` is bit `(m - l - 1)` of `x_k`.
    pub fn cell_quadrant(&self, x: &[usize], level: u8) -> u32 {
        let shift = self.m - u32::from(level) - 1;
        let mut delta = 0u32;
        for (k, &xk) in x.iter().enumerate() {
            delta |= u32::from((xk >> shift) & 1 == 1) << k;
        }
        delta
    }

    /// Reconstructs a single data cell by summing its path contributions
    /// (the multi-dimensional Equation (1)); `O(2^D · m)`.
    pub fn reconstruct_cell(&self, x: &[usize]) -> f64 {
        let mut v = self.root_average();
        for node in self.cell_path(x) {
            let delta = self.cell_quadrant(x, node.level);
            for c in self.node_coeffs(node) {
                v += Self::child_sign(c.bmask, delta) * c.value;
            }
        }
        v
    }

    /// Reconstructs the full data array via the inverse transform (`O(N)`).
    ///
    /// # Panics
    /// Never (shape validated at construction).
    pub fn reconstruct_all(&self) -> NdArray {
        let mut out = self.coeffs.clone();
        // Shape was validated hypercube at construction; the inverse
        // transform cannot fail on it.
        // wsyn: allow(no-panic)
        nonstandard::inverse_in_place(&mut out).expect("validated hypercube");
        out
    }

    /// Reconstructs the full data array retaining only the coefficients at
    /// linear positions accepted by `retained` (others are zeroed — the
    /// synopsis semantics of §2.3).
    pub fn reconstruct_all_with<F: Fn(usize) -> bool>(&self, retained: F) -> NdArray {
        let mut out = self.coeffs.clone();
        for (pos, v) in out.data_mut().iter_mut().enumerate() {
            if !retained(pos) {
                *v = 0.0;
            }
        }
        // Shape was validated hypercube at construction; the inverse
        // transform cannot fail on it.
        // wsyn: allow(no-panic)
        nonstandard::inverse_in_place(&mut out).expect("validated hypercube");
        out
    }

    /// Linear indices of the data cells in the support of an inner node
    /// (the hypercube of side `2^{m-level}` at offset `q·2^{m-level}`).
    pub fn cells_under(&self, node: NodeRef) -> Vec<usize> {
        let q = self.node_pos(node);
        let width = self.side >> node.level;
        let count = width.pow(narrow_u32(self.d));
        let mut out = Vec::with_capacity(count);
        let mut rel = vec![0usize; self.d];
        let mut abs = vec![0usize; self.d];
        loop {
            for k in 0..self.d {
                abs[k] = q[k] * width + rel[k];
            }
            out.push(self.coeffs.shape().linearize(&abs));
            let mut k = self.d;
            loop {
                if k == 0 {
                    return out;
                }
                k -= 1;
                rel[k] += 1;
                if rel[k] < width {
                    break;
                }
                rel[k] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nd::NdShape;

    fn tree_4x4() -> ErrorTreeNd {
        let shape = NdShape::hypercube(4, 2).unwrap();
        let vals: Vec<f64> = (0..16).map(|i| f64::from((i * 7 + 3) % 13) - 5.0).collect();
        ErrorTreeNd::from_data(&NdArray::new(shape, vals).unwrap()).unwrap()
    }

    #[test]
    fn figure_2_structure() {
        // 4x4: root -> single level-0 node holding W[0,1], W[1,0], W[1,1];
        // its 4 children are the 2x2-quadrant level-1 nodes; the lower-left
        // quadrant child holds W[0,2], W[2,0], W[2,2].
        let t = tree_4x4();
        assert_eq!(t.levels(), 2);
        match t.root_children() {
            NodeChildren::Nodes(v) => assert_eq!(v, vec![NodeRef { level: 0, index: 0 }]),
            _ => panic!("root child should be a node"),
        }
        let top = NodeRef { level: 0, index: 0 };
        let coeffs = t.node_coeffs(top);
        let shape = t.coeffs().shape().clone();
        let positions: Vec<usize> = coeffs.iter().map(|c| c.pos).collect();
        // bmask 1 = offset in dim 0? bit k of bmask = dim k. bmask=1 -> (1,0).
        assert_eq!(
            positions,
            vec![
                shape.linearize(&[1, 0]),
                shape.linearize(&[0, 1]),
                shape.linearize(&[1, 1])
            ]
        );
        match t.children(top) {
            NodeChildren::Nodes(v) => {
                assert_eq!(v.len(), 4);
                // Quadrant delta=0 is the (0,0) quadrant node.
                assert_eq!(v[0], NodeRef { level: 1, index: 0 });
            }
            _ => panic!("level-0 children should be nodes for m=2"),
        }
        // The (0,0)-quadrant level-1 node holds W at (0,2),(2,0),(2,2).
        let ll = NodeRef { level: 1, index: 0 };
        let coeffs = t.node_coeffs(ll);
        let positions: Vec<usize> = coeffs.iter().map(|c| c.pos).collect();
        assert_eq!(
            positions,
            vec![
                shape.linearize(&[2, 0]),
                shape.linearize(&[0, 2]),
                shape.linearize(&[2, 2])
            ]
        );
        // Level-1 children are data cells.
        match t.children(ll) {
            NodeChildren::Cells(cells) => {
                // Quadrant mask bit k selects the high half along dim k, so
                // delta order is (0,0), (1,0), (0,1), (1,1).
                assert_eq!(
                    cells,
                    vec![
                        shape.linearize(&[0, 0]),
                        shape.linearize(&[1, 0]),
                        shape.linearize(&[0, 1]),
                        shape.linearize(&[1, 1])
                    ]
                );
            }
            _ => panic!("level-1 children should be cells for m=2"),
        }
    }

    #[test]
    fn node_counts() {
        let t = tree_4x4();
        assert_eq!(t.nodes_at_level(0), 1);
        assert_eq!(t.nodes_at_level(1), 4);
        assert_eq!(t.all_nodes().count(), 5);
        // Coefficient accounting: 1 (root avg) + 5 nodes * 3 coeffs = 16.
        let total: usize = t.all_nodes().map(|n| t.node_coeffs(n).len()).sum();
        assert_eq!(1 + total, 16);
    }

    #[test]
    fn reconstruct_cell_matches_inverse() {
        let t = tree_4x4();
        let full = t.reconstruct_all();
        for x0 in 0..4 {
            for x1 in 0..4 {
                let v = t.reconstruct_cell(&[x0, x1]);
                let w = full.get(&[x0, x1]);
                assert!((v - w).abs() < 1e-12, "cell ({x0},{x1}): {v} vs {w}");
            }
        }
    }

    #[test]
    fn reconstruct_cell_matches_inverse_3d() {
        let shape = NdShape::hypercube(4, 3).unwrap();
        let vals: Vec<f64> = (0..64).map(|i| f64::from((i * 11 + 5) % 17)).collect();
        let t = ErrorTreeNd::from_data(&NdArray::new(shape.clone(), vals).unwrap()).unwrap();
        let full = t.reconstruct_all();
        for idx in 0..shape.len() {
            let x = shape.delinearize(idx);
            assert!((t.reconstruct_cell(&x) - full.data()[idx]).abs() < 1e-12);
        }
    }

    #[test]
    fn d1_tree_matches_tree1d() {
        let vals = vec![2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0];
        let shape = NdShape::new(vec![8]).unwrap();
        let tn = ErrorTreeNd::from_data(&NdArray::new(shape, vals.clone()).unwrap()).unwrap();
        let t1 = crate::tree1d::ErrorTree1d::from_data(&vals).unwrap();
        // Node (l, q) holds exactly coefficient c_{2^l + q}.
        for node in tn.all_nodes() {
            let coeffs = tn.node_coeffs(node);
            assert_eq!(coeffs.len(), 1);
            let expect = (1usize << node.level) + node.index as usize;
            assert_eq!(coeffs[0].pos, expect);
            assert_eq!(coeffs[0].value, t1.coeff(expect));
        }
        // Signs: bmask=1, delta 0 (left) +, delta 1 (right) -.
        assert_eq!(ErrorTreeNd::child_sign(1, 0), 1.0);
        assert_eq!(ErrorTreeNd::child_sign(1, 1), -1.0);
    }

    #[test]
    fn quadrant_signs_balance() {
        // Every detail coefficient has equally many + and - quadrants
        // (needed by Proposition 3.3's sign navigation).
        for d in 1..=4usize {
            for bmask in 1u32..(1 << d) {
                let mut plus = 0;
                let mut minus = 0;
                for delta in 0..(1u32 << d) {
                    if ErrorTreeNd::child_sign(bmask, delta) > 0.0 {
                        plus += 1;
                    } else {
                        minus += 1;
                    }
                }
                assert_eq!(plus, minus, "d={d} bmask={bmask}");
            }
        }
    }

    #[test]
    fn cells_under_counts() {
        let t = tree_4x4();
        let top = NodeRef { level: 0, index: 0 };
        assert_eq!(t.cells_under(top).len(), 16);
        let ll = NodeRef { level: 1, index: 3 };
        let cells = t.cells_under(ll);
        assert_eq!(cells.len(), 4);
        let shape = t.coeffs().shape();
        // Node (1, q=(1,1)) supports cells (2..4, 2..4).
        let expect: Vec<usize> = vec![
            shape.linearize(&[2, 2]),
            shape.linearize(&[2, 3]),
            shape.linearize(&[3, 2]),
            shape.linearize(&[3, 3]),
        ];
        assert_eq!(cells, expect);
    }

    #[test]
    fn side_one_degenerate_tree() {
        let shape = NdShape::hypercube(1, 2).unwrap();
        let t = ErrorTreeNd::from_data(&NdArray::new(shape, vec![9.0]).unwrap()).unwrap();
        assert_eq!(t.levels(), 0);
        assert_eq!(t.root_children(), NodeChildren::Cells(vec![0]));
        assert_eq!(t.root_average(), 9.0);
        assert_eq!(t.all_nodes().count(), 0);
    }

    #[test]
    fn reconstruct_with_subset_zeroes_dropped() {
        let t = tree_4x4();
        // Retain only the root average: every cell reconstructs to it.
        let approx = t.reconstruct_all_with(|pos| pos == 0);
        for &v in approx.data() {
            assert!((v - t.root_average()).abs() < 1e-12);
        }
    }
}

#[cfg(test)]
mod proptests {
    #![allow(clippy::needless_range_loop)]
    use super::*;
    use crate::nd::NdShape;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn path_reconstruction_2d(side_exp in 0u32..=3, vals in proptest::collection::vec(-1e4f64..1e4, 64)) {
            let side = 1usize << side_exp;
            let shape = NdShape::hypercube(side, 2).unwrap();
            let vals: Vec<f64> = vals.into_iter().take(shape.len()).collect();
            prop_assume!(vals.len() == shape.len());
            let t = ErrorTreeNd::from_data(&NdArray::new(shape.clone(), vals.clone()).unwrap()).unwrap();
            for idx in 0..shape.len() {
                let x = shape.delinearize(idx);
                let v = t.reconstruct_cell(&x);
                prop_assert!((v - vals[idx]).abs() <= 1e-7 * (1.0 + vals[idx].abs()));
            }
        }

        #[test]
        fn ancestor_sign_constant_over_child_subtree(vals in proptest::collection::vec(-100f64..100.0, 64)) {
            // For every node coefficient and child quadrant: the sign of the
            // coefficient's contribution is identical for all cells in that
            // quadrant (foundation of the incoming-error DP).
            let shape = NdShape::hypercube(8, 2).unwrap();
            let vals: Vec<f64> = vals.into_iter().take(64).collect();
            let t = ErrorTreeNd::from_data(&NdArray::new(shape.clone(), vals).unwrap()).unwrap();
            for node in t.all_nodes() {
                if let NodeChildren::Nodes(children) = t.children(node) {
                    for (delta, child) in children.iter().enumerate() {
                        for cell in t.cells_under(*child) {
                            let x = shape.delinearize(cell);
                            let q = t.cell_quadrant(&x, node.level);
                            prop_assert_eq!(q, delta as u32);
                        }
                    }
                }
            }
        }
    }
}
