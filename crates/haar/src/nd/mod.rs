//! Multi-dimensional Haar wavelets (§2.2 of the paper).
//!
//! Two decompositions are provided, both natural generalizations of the
//! one-dimensional transform:
//!
//! * [`nonstandard`] — the **nonstandard** decomposition used by the paper's
//!   multi-dimensional error tree (Figures 1(b) and 2): at every resolution
//!   level, one pairwise averaging/differencing step is applied along *each*
//!   dimension, then the algorithm recurses on the low-pass hypercube.
//!   Requires all sides equal (a `2^m` hypercube).
//! * [`standard`] — the **standard** decomposition: the *full* 1-D transform
//!   is applied along each dimension in turn. Accepts unequal power-of-two
//!   sides.
//!
//! [`tree::ErrorTreeNd`] exposes the nonstandard coefficients as the error
//! tree of §2.2: each non-root node holds the `2^D - 1` coefficients sharing
//! a support region, and has `2^D` children (the quadrants of that region);
//! the root holds the single overall average and has one child.

pub mod nonstandard;
pub mod standard;
pub mod tree;

pub use tree::{ErrorTreeNd, NodeChildren, NodeCoeff, NodeRef};

use crate::{is_pow2, HaarError};

/// Shape of a `D`-dimensional data array; every side must be a power of two.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NdShape {
    sides: Vec<usize>,
}

impl NdShape {
    /// Creates a shape from dimension sides (row-major order; the **last**
    /// dimension varies fastest in the flat buffer).
    ///
    /// # Errors
    /// [`HaarError::ZeroDimensional`] for an empty side list,
    /// [`HaarError::NotPowerOfTwo`] if any side is not a power of two.
    pub fn new(sides: Vec<usize>) -> Result<Self, HaarError> {
        if sides.is_empty() {
            return Err(HaarError::ZeroDimensional);
        }
        for &s in &sides {
            if !is_pow2(s) {
                return Err(HaarError::NotPowerOfTwo { len: s });
            }
        }
        Ok(Self { sides })
    }

    /// Convenience constructor for a hypercube `side^d`.
    ///
    /// # Errors
    /// Same as [`NdShape::new`].
    pub fn hypercube(side: usize, d: usize) -> Result<Self, HaarError> {
        Self::new(vec![side; d])
    }

    /// Number of dimensions `D`.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.sides.len()
    }

    /// Side lengths per dimension.
    #[inline]
    pub fn sides(&self) -> &[usize] {
        &self.sides
    }

    /// Total number of cells (product of sides).
    #[inline]
    pub fn len(&self) -> usize {
        self.sides.iter().product()
    }

    /// Whether the shape has zero cells (never true for valid shapes).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether all sides are equal (required by the nonstandard transform).
    pub fn is_hypercube(&self) -> bool {
        self.sides.windows(2).all(|w| w[0] == w[1])
    }

    /// Row-major linear index of `coords` (last dimension fastest).
    ///
    /// # Panics
    /// Debug-panics when a coordinate is out of range.
    #[inline]
    pub fn linearize(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.ndims());
        let mut idx = 0usize;
        for (c, s) in coords.iter().zip(&self.sides) {
            debug_assert!(c < s, "coordinate {c} out of range for side {s}");
            idx = idx * s + c;
        }
        idx
    }

    /// Inverse of [`NdShape::linearize`].
    pub fn delinearize(&self, mut idx: usize) -> Vec<usize> {
        let mut coords = vec![0usize; self.ndims()];
        for k in (0..self.ndims()).rev() {
            coords[k] = idx % self.sides[k];
            idx /= self.sides[k];
        }
        coords
    }
}

/// A dense `D`-dimensional array of `f64` cells in row-major layout.
#[derive(Debug, Clone, PartialEq)]
pub struct NdArray {
    shape: NdShape,
    data: Vec<f64>,
}

impl NdArray {
    /// Wraps a flat buffer with a shape.
    ///
    /// # Errors
    /// [`HaarError::ShapeMismatch`] when `data.len() != shape.len()`.
    pub fn new(shape: NdShape, data: Vec<f64>) -> Result<Self, HaarError> {
        if data.len() != shape.len() {
            return Err(HaarError::ShapeMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// A zero-filled array.
    pub fn zeros(shape: NdShape) -> Self {
        let n = shape.len();
        Self {
            shape,
            data: vec![0.0; n],
        }
    }

    /// The array's shape.
    #[inline]
    pub fn shape(&self) -> &NdShape {
        &self.shape
    }

    /// Flat row-major cell buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the array, returning shape and buffer.
    pub fn into_parts(self) -> (NdShape, Vec<f64>) {
        (self.shape, self.data)
    }

    /// Cell value at multi-dimensional `coords`.
    #[inline]
    pub fn get(&self, coords: &[usize]) -> f64 {
        self.data[self.shape.linearize(coords)]
    }

    /// Sets the cell at `coords`.
    #[inline]
    pub fn set(&mut self, coords: &[usize], v: f64) {
        let idx = self.shape.linearize(coords);
        self.data[idx] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_validation() {
        assert_eq!(
            NdShape::new(vec![]).unwrap_err(),
            HaarError::ZeroDimensional
        );
        assert_eq!(
            NdShape::new(vec![4, 3]).unwrap_err(),
            HaarError::NotPowerOfTwo { len: 3 }
        );
        let s = NdShape::new(vec![4, 8]).unwrap();
        assert_eq!(s.ndims(), 2);
        assert_eq!(s.len(), 32);
        assert!(!s.is_hypercube());
        assert!(NdShape::hypercube(4, 3).unwrap().is_hypercube());
    }

    #[test]
    fn linearize_roundtrip() {
        let s = NdShape::new(vec![2, 4, 8]).unwrap();
        for idx in 0..s.len() {
            let c = s.delinearize(idx);
            assert_eq!(s.linearize(&c), idx);
        }
        // Last dimension fastest.
        assert_eq!(s.linearize(&[0, 0, 1]), 1);
        assert_eq!(s.linearize(&[0, 1, 0]), 8);
        assert_eq!(s.linearize(&[1, 0, 0]), 32);
    }

    #[test]
    fn ndarray_shape_mismatch() {
        let s = NdShape::new(vec![2, 2]).unwrap();
        assert_eq!(
            NdArray::new(s, vec![0.0; 5]).unwrap_err(),
            HaarError::ShapeMismatch {
                expected: 4,
                actual: 5
            }
        );
    }

    #[test]
    fn get_set() {
        let s = NdShape::new(vec![2, 2]).unwrap();
        let mut a = NdArray::zeros(s);
        a.set(&[1, 0], 3.5);
        assert_eq!(a.get(&[1, 0]), 3.5);
        assert_eq!(a.data()[2], 3.5);
    }
}
