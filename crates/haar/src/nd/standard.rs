//! Standard multi-dimensional Haar decomposition (§2.2).
//!
//! The standard decomposition applies the *complete* one-dimensional Haar
//! transform along each dimension in turn. Unlike the nonstandard
//! decomposition it accepts unequal (power-of-two) sides, which makes it the
//! substrate of choice for rectangular OLAP cubes; the paper's thresholding
//! algorithms, however, operate on the nonstandard error tree, so this
//! module exists for substrate completeness and for cross-checking energy
//! properties.

use super::{NdArray, NdShape};
use crate::HaarError;

/// Computes the standard Haar decomposition of `data`.
///
/// # Errors
/// None beyond shape construction (any power-of-two sides are accepted);
/// kept as a `Result` for API symmetry with the nonstandard transform.
pub fn forward(data: &NdArray) -> Result<NdArray, HaarError> {
    let mut out = data.clone();
    forward_in_place(&mut out);
    Ok(out)
}

/// In-place standard decomposition.
pub fn forward_in_place(arr: &mut NdArray) {
    let shape = arr.shape().clone();
    for dim in 0..shape.ndims() {
        full_transform_along(arr.data_mut(), &shape, dim, Direction::Forward);
    }
}

/// Reconstructs the data array from standard coefficients.
///
/// # Errors
/// None in practice; `Result` for API symmetry.
pub fn inverse(coeffs: &NdArray) -> Result<NdArray, HaarError> {
    let mut out = coeffs.clone();
    inverse_in_place(&mut out);
    Ok(out)
}

/// In-place inverse of [`forward_in_place`].
pub fn inverse_in_place(arr: &mut NdArray) {
    let shape = arr.shape().clone();
    for dim in (0..shape.ndims()).rev() {
        full_transform_along(arr.data_mut(), &shape, dim, Direction::Inverse);
    }
}

#[derive(Clone, Copy)]
enum Direction {
    Forward,
    Inverse,
}

/// Applies the full 1-D Haar transform (or inverse) along `dim` to every
/// line of the array.
fn full_transform_along(data: &mut [f64], shape: &NdShape, dim: usize, dir: Direction) {
    let d = shape.ndims();
    let side = shape.sides()[dim];
    let mut stride = 1usize;
    for k in (dim + 1)..d {
        stride *= shape.sides()[k];
    }
    let mut line = vec![0.0f64; side];
    let mut coords = vec![0usize; d];
    loop {
        let base = shape.linearize(&coords);
        for i in 0..side {
            line[i] = data[base + i * stride];
        }
        match dir {
            Direction::Forward => crate::transform::forward_in_place(&mut line),
            Direction::Inverse => crate::transform::inverse_in_place(&mut line),
        }
        for i in 0..side {
            data[base + i * stride] = line[i];
        }
        // Advance over all dims except `dim`.
        let mut k = d;
        loop {
            if k == 0 {
                return;
            }
            k -= 1;
            if k == dim {
                continue;
            }
            coords[k] += 1;
            if coords[k] < shape.sides()[k] {
                break;
            }
            coords[k] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_rectangular() {
        let shape = NdShape::new(vec![2, 8]).unwrap();
        let vals: Vec<f64> = (0..16).map(|i| f64::from((i * 5 + 3) % 11) - 4.0).collect();
        let original = NdArray::new(shape, vals).unwrap();
        let w = forward(&original).unwrap();
        let back = inverse(&w).unwrap();
        for (x, y) in original.data().iter().zip(back.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_array_single_coefficient() {
        let shape = NdShape::new(vec![4, 4]).unwrap();
        let w = forward(&NdArray::new(shape, vec![3.0; 16]).unwrap()).unwrap();
        assert_eq!(w.data()[0], 3.0);
        assert!(w.data()[1..].iter().all(|&c| c == 0.0));
    }

    #[test]
    fn overall_average_agrees_with_nonstandard() {
        let shape = NdShape::hypercube(4, 2).unwrap();
        let vals: Vec<f64> = (0..16).map(f64::from).collect();
        let arr = NdArray::new(shape, vals).unwrap();
        let ws = forward(&arr).unwrap();
        let wn = super::super::nonstandard::forward(&arr).unwrap();
        assert!((ws.data()[0] - wn.data()[0]).abs() < 1e-12);
        assert_eq!(ws.data()[0], 7.5);
    }

    #[test]
    fn one_dimensional_case_matches_1d_transform() {
        let vals = vec![2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0];
        let shape = NdShape::new(vec![8]).unwrap();
        let w = forward(&NdArray::new(shape, vals.clone()).unwrap()).unwrap();
        let w1d = crate::transform::forward(&vals).unwrap();
        assert_eq!(w.data(), &w1d[..]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip(e0 in 0u32..=3, e1 in 0u32..=3, vals in proptest::collection::vec(-1e4f64..1e4, 64)) {
            let shape = NdShape::new(vec![1 << e0, 1 << e1]).unwrap();
            let vals: Vec<f64> = vals.into_iter().take(shape.len()).collect();
            prop_assume!(vals.len() == shape.len());
            let original = NdArray::new(shape, vals).unwrap();
            let back = inverse(&forward(&original).unwrap()).unwrap();
            for (x, y) in original.data().iter().zip(back.data()) {
                prop_assert!((x - y).abs() <= 1e-7 * (1.0 + x.abs()));
            }
        }
    }
}
