//! # wsyn-haar — Haar wavelet substrate
//!
//! This crate implements the wavelet machinery of Section 2 of
//! *Garofalakis & Kumar, "Deterministic Wavelet Thresholding for
//! Maximum-Error Metrics" (PODS 2004)*:
//!
//! * the one-dimensional Haar wavelet transform and its inverse
//!   ([`transform`]), using the paper's unnormalized convention
//!   (pairwise average `(a+b)/2`, detail `(a-b)/2`) so the worked example
//!   of §2.1 reproduces exactly;
//! * the one-dimensional *error tree* ([`tree1d::ErrorTree1d`], Figure 1(a)):
//!   ancestor paths, contribution signs, support regions, and the
//!   reconstruction formula of Equation (1);
//! * multi-dimensional Haar wavelets (§2.2): the **nonstandard**
//!   decomposition with its error tree of `2^D - 1`-coefficient nodes and
//!   `2^D` children per node (Figures 1(b) and 2), and the **standard**
//!   decomposition ([`nd`]);
//! * integer-scaled transforms ([`int`]) backing the `(1+ε)` absolute-error
//!   scheme of §3.2.2, which requires integral coefficients.
//!
//! Everything here is deterministic, allocation-conscious, and `O(N)` per
//! transform. Domains must be powers of two (the setting of the paper);
//! padding helpers live in the `wsyn-datagen` crate.
//!
//! ## Conventions
//!
//! Coefficients are stored **unnormalized** (the error-tree values used by
//! all thresholding algorithms). The *normalized* magnitude used by
//! conventional greedy L2 thresholding is `|c_i| * sqrt(support(i))`; see
//! [`transform::normalized_magnitudes`] and [`tree1d::ErrorTree1d::level`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod int;
pub mod nd;
pub mod transform;
pub mod tree1d;

pub use error::HaarError;
pub use nd::{ErrorTreeNd, NdArray, NdShape, NodeRef};
pub use tree1d::ErrorTree1d;

/// Returns `true` when `n` is a power of two (and non-zero).
#[inline]
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// `log2` of a power of two.
///
/// # Panics
/// Panics if `n` is not a power of two.
#[inline]
pub fn log2_exact(n: usize) -> u32 {
    assert!(is_pow2(n), "expected a power of two, got {n}");
    n.trailing_zeros()
}
