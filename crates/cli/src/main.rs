//! `wsyn` — command-line interface for deterministic maximum-error wavelet
//! synopses.
//!
//! ```text
//! wsyn generate --kind zipf --n 256 --seed 7 --out data.txt
//! wsyn transform --input data.txt
//! wsyn build --input data.txt --budget 16 --metric rel:1.0 --algo minmax --out syn.json
//! wsyn eval --synopsis syn.json --input data.txt --metric rel:1.0
//! wsyn query --synopsis syn.json point 5
//! wsyn query --synopsis syn.json range 0 64
//! ```
//!
//! Input files hold one `f64` per line (blank lines and `#` comments
//! ignored); synopses are stored as JSON.

use std::process::ExitCode;

mod args;
mod commands;
mod io;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
