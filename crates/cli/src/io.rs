//! File formats: data vectors (one f64 per line) and synopsis JSON.

use std::fs;
use std::path::Path;

use wsyn_core::json::{self, Value};
use wsyn_synopsis::Synopsis1d;

/// Reads a data vector: one `f64` per line; blank lines and lines starting
/// with `#` are ignored.
pub fn read_data(path: &str) -> Result<Vec<f64>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let v: f64 = line
            .parse()
            .map_err(|_| format!("{path}:{}: not a number: '{line}'", lineno + 1))?;
        out.push(v);
    }
    if out.is_empty() {
        return Err(format!("{path}: no data values"));
    }
    Ok(out)
}

/// Writes a data vector, one value per line.
pub fn write_data(path: &str, data: &[f64]) -> Result<(), String> {
    let body: String = data.iter().map(|v| format!("{v}\n")).collect();
    fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))
}

/// On-disk synopsis document: the synopsis plus provenance metadata.
#[derive(Debug)]
pub struct SynopsisDoc {
    /// Which algorithm built it (`minmax`, `greedy`, `minrelvar-draw`).
    pub algorithm: String,
    /// Metric spec string (`abs` / `rel:<sanity>`), if applicable.
    pub metric: Option<String>,
    /// The guaranteed maximum error at build time (MinMaxErr only).
    pub objective: Option<f64>,
    /// The synopsis itself.
    pub synopsis: Synopsis1d,
}

impl SynopsisDoc {
    fn to_json(&self) -> Value {
        let entries = self
            .synopsis
            .entries()
            .iter()
            .map(|&(j, v)| Value::Array(vec![Value::Number(j as f64), Value::Number(v)]))
            .collect();
        json::object(vec![
            ("algorithm", Value::String(self.algorithm.clone())),
            (
                "metric",
                self.metric
                    .as_ref()
                    .map_or(Value::Null, |m| Value::String(m.clone())),
            ),
            (
                "objective",
                self.objective.map_or(Value::Null, Value::Number),
            ),
            (
                "synopsis",
                json::object(vec![
                    ("n", Value::Number(self.synopsis.n() as f64)),
                    ("entries", Value::Array(entries)),
                ]),
            ),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        let field = |key: &str| v.get(key).ok_or_else(|| format!("missing field '{key}'"));
        let algorithm = field("algorithm")?
            .as_str()
            .ok_or("'algorithm' is not a string")?
            .to_string();
        let metric = match v.get("metric") {
            None => None,
            Some(Value::Null) => None,
            Some(m) => Some(m.as_str().ok_or("'metric' is not a string")?.to_string()),
        };
        let objective = match v.get("objective") {
            None => None,
            Some(Value::Null) => None,
            Some(o) => Some(o.as_f64().ok_or("'objective' is not a number")?),
        };
        let syn = field("synopsis")?;
        let n = syn
            .get("n")
            .and_then(Value::as_usize)
            .ok_or("synopsis 'n' is not a non-negative integer")?;
        let raw_entries = syn
            .get("entries")
            .and_then(Value::as_array)
            .ok_or("synopsis 'entries' is not an array")?;
        let mut entries = Vec::with_capacity(raw_entries.len());
        for pair in raw_entries {
            let pair = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or("synopsis entry is not an [index, value] pair")?;
            let j = pair[0]
                .as_usize()
                .ok_or("synopsis entry index is not a non-negative integer")?;
            let value = pair[1]
                .as_f64()
                .ok_or("synopsis entry value is not a number")?;
            entries.push((j, value));
        }
        // Construct without invariant checks; the caller validates, so
        // malformed documents surface as errors instead of panics.
        let synopsis = Synopsis1d::from_raw_parts(n, entries);
        Ok(SynopsisDoc {
            algorithm,
            metric,
            objective,
            synopsis,
        })
    }
}

/// Writes a synopsis document as pretty JSON.
pub fn write_synopsis(path: &str, doc: &SynopsisDoc) -> Result<(), String> {
    let text = doc.to_json().pretty();
    fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Reads a synopsis document, validating the synopsis's structural
/// invariants (the parser alone would accept out-of-range or unsorted
/// entries, which later panic or silently mis-answer queries).
pub fn read_synopsis(path: &str) -> Result<SynopsisDoc, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value = Value::parse(&text).map_err(|e| format!("{path}: bad synopsis JSON: {e}"))?;
    let doc =
        SynopsisDoc::from_json(&value).map_err(|e| format!("{path}: bad synopsis JSON: {e}"))?;
    doc.synopsis
        .validate()
        .map_err(|e| format!("{path}: invalid synopsis: {e}"))?;
    Ok(doc)
}

/// Ensures the parent directory of `path` exists.
pub fn ensure_parent(path: &str) -> Result<(), String> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).map_err(|e| format!("cannot create {parent:?}: {e}"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_roundtrip() {
        let dir = std::env::temp_dir().join("wsyn-cli-test-data");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.txt");
        let path = path.to_str().unwrap();
        write_data(path, &[1.5, -2.0, 3.25]).unwrap();
        assert_eq!(read_data(path).unwrap(), vec![1.5, -2.0, 3.25]);
    }

    #[test]
    fn data_skips_comments_and_blanks() {
        let dir = std::env::temp_dir().join("wsyn-cli-test-data2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.txt");
        std::fs::write(&path, "# header\n1.0\n\n2.0\n").unwrap();
        assert_eq!(read_data(path.to_str().unwrap()).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn malformed_synopsis_json_rejected_not_panicking() {
        let dir = std::env::temp_dir().join("wsyn-cli-test-evil");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("evil.json");
        std::fs::write(
            &path,
            r#"{"algorithm":"minmax","metric":"abs","objective":1.0,
                "synopsis":{"n":8,"entries":[[99,5.0]]}}"#,
        )
        .unwrap();
        let err = read_synopsis(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        std::fs::write(
            &path,
            r#"{"algorithm":"minmax","metric":"abs","objective":0.0,
                "synopsis":{"n":8,"entries":[[5,1.0],[2,3.0]]}}"#,
        )
        .unwrap();
        let err = read_synopsis(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("sorted"), "{err}");
    }

    #[test]
    fn synopsis_roundtrip() {
        let data = [2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0];
        let tree = wsyn_haar::ErrorTree1d::from_data(&data).unwrap();
        let syn = Synopsis1d::from_indices(&tree, &[0, 1, 5]);
        let doc = SynopsisDoc {
            algorithm: "minmax".into(),
            metric: Some("rel:1.0".into()),
            objective: Some(0.5),
            synopsis: syn.clone(),
        };
        let dir = std::env::temp_dir().join("wsyn-cli-test-syn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.json");
        let path = path.to_str().unwrap();
        write_synopsis(path, &doc).unwrap();
        let back = read_synopsis(path).unwrap();
        assert_eq!(back.synopsis, syn);
        assert_eq!(back.objective, Some(0.5));
    }
}
