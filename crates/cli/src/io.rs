//! File formats: data vectors (one f64 per line) and synopsis JSON.

use std::fs;
use std::path::Path;

use wsyn_core::json::{self, Value};
use wsyn_synopsis::Synopsis1d;

/// Reads a data vector: one `f64` per line; blank lines and lines starting
/// with `#` are ignored.
pub fn read_data(path: &str) -> Result<Vec<f64>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let v: f64 = line
            .parse()
            .map_err(|_| format!("{path}:{}: not a number: '{line}'", lineno + 1))?;
        out.push(v);
    }
    if out.is_empty() {
        return Err(format!("{path}: no data values"));
    }
    Ok(out)
}

/// Writes a data vector, one value per line.
pub fn write_data(path: &str, data: &[f64]) -> Result<(), String> {
    let body: String = data.iter().map(|v| format!("{v}\n")).collect();
    fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))
}

/// The synopsis payload of an on-disk document: one variant per
/// persisted synopsis family. Wavelet documents store `entries`
/// (`[index, coefficient]` pairs); histogram documents store `buckets`
/// (`[start, value]` pairs) — the key names double as the format tag.
#[derive(Debug, Clone, PartialEq)]
pub enum SynopsisPayload {
    /// Retained wavelet coefficients.
    Wavelet(Synopsis1d),
    /// Step-function buckets.
    Histogram(wsyn_hist::StepSynopsis),
}

impl SynopsisPayload {
    /// Domain size `N`.
    #[must_use]
    pub fn n(&self) -> usize {
        match self {
            SynopsisPayload::Wavelet(s) => s.n(),
            SynopsisPayload::Histogram(s) => s.n(),
        }
    }

    /// Space used: retained coefficients or buckets.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            SynopsisPayload::Wavelet(s) => s.len(),
            SynopsisPayload::Histogram(s) => s.len(),
        }
    }

    /// Whether the synopsis retains nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// What `len()` counts, for human-readable output.
    #[must_use]
    pub fn unit(&self) -> &'static str {
        match self {
            SynopsisPayload::Wavelet(_) => "coefficients",
            SynopsisPayload::Histogram(_) => "buckets",
        }
    }

    /// The full approximate reconstruction.
    #[must_use]
    pub fn reconstruct(&self) -> Vec<f64> {
        match self {
            SynopsisPayload::Wavelet(s) => s.reconstruct(),
            SynopsisPayload::Histogram(s) => s.reconstruct(),
        }
    }
}

/// On-disk synopsis document: the synopsis plus provenance metadata.
#[derive(Debug)]
pub struct SynopsisDoc {
    /// Which synopsis family built it (a registry id).
    pub algorithm: String,
    /// Metric spec string (`abs` / `rel:<sanity>`), if applicable.
    pub metric: Option<String>,
    /// The guaranteed maximum error at build time (guarantee-providing
    /// families only).
    pub objective: Option<f64>,
    /// The synopsis itself.
    pub payload: SynopsisPayload,
}

impl SynopsisDoc {
    fn to_json(&self) -> Value {
        let body = match &self.payload {
            SynopsisPayload::Wavelet(s) => {
                let entries = s
                    .entries()
                    .iter()
                    .map(|&(j, v)| Value::Array(vec![Value::Number(j as f64), Value::Number(v)]))
                    .collect();
                json::object(vec![
                    ("n", Value::Number(s.n() as f64)),
                    ("entries", Value::Array(entries)),
                ])
            }
            SynopsisPayload::Histogram(s) => {
                let buckets = s
                    .buckets()
                    .iter()
                    .map(|b| {
                        Value::Array(vec![Value::Number(b.start as f64), Value::Number(b.value)])
                    })
                    .collect();
                json::object(vec![
                    ("n", Value::Number(s.n() as f64)),
                    ("buckets", Value::Array(buckets)),
                ])
            }
        };
        json::object(vec![
            ("algorithm", Value::String(self.algorithm.clone())),
            (
                "metric",
                self.metric
                    .as_ref()
                    .map_or(Value::Null, |m| Value::String(m.clone())),
            ),
            (
                "objective",
                self.objective.map_or(Value::Null, Value::Number),
            ),
            ("synopsis", body),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        let field = |key: &str| v.get(key).ok_or_else(|| format!("missing field '{key}'"));
        let algorithm = field("algorithm")?
            .as_str()
            .ok_or("'algorithm' is not a string")?
            .to_string();
        let metric = match v.get("metric") {
            None => None,
            Some(Value::Null) => None,
            Some(m) => Some(m.as_str().ok_or("'metric' is not a string")?.to_string()),
        };
        let objective = match v.get("objective") {
            None => None,
            Some(Value::Null) => None,
            Some(o) => Some(o.as_f64().ok_or("'objective' is not a number")?),
        };
        let syn = field("synopsis")?;
        let n = syn
            .get("n")
            .and_then(Value::as_usize)
            .ok_or("synopsis 'n' is not a non-negative integer")?;
        let pairs = |key: &str, raw: &[Value]| -> Result<Vec<(usize, f64)>, String> {
            let mut out = Vec::with_capacity(raw.len());
            for pair in raw {
                let pair = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| format!("synopsis {key} entry is not a two-element pair"))?;
                let j = pair[0]
                    .as_usize()
                    .ok_or("synopsis entry index is not a non-negative integer")?;
                let value = pair[1]
                    .as_f64()
                    .ok_or("synopsis entry value is not a number")?;
                out.push((j, value));
            }
            Ok(out)
        };
        let payload = if let Some(raw) = syn.get("entries").and_then(Value::as_array) {
            // Construct without invariant checks; the caller validates,
            // so malformed documents surface as errors instead of
            // panics.
            SynopsisPayload::Wavelet(Synopsis1d::from_raw_parts(n, pairs("entries", raw)?))
        } else if let Some(raw) = syn.get("buckets").and_then(Value::as_array) {
            let buckets = pairs("buckets", raw)?
                .into_iter()
                .map(|(start, value)| wsyn_hist::Bucket { start, value })
                .collect();
            SynopsisPayload::Histogram(
                wsyn_hist::StepSynopsis::from_buckets(n, buckets)
                    .map_err(|e| format!("invalid histogram synopsis: {e}"))?,
            )
        } else {
            return Err("synopsis has neither 'entries' nor 'buckets'".to_string());
        };
        Ok(SynopsisDoc {
            algorithm,
            metric,
            objective,
            payload,
        })
    }
}

/// Writes a synopsis document as pretty JSON.
pub fn write_synopsis(path: &str, doc: &SynopsisDoc) -> Result<(), String> {
    let text = doc.to_json().pretty();
    fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Reads a synopsis document, validating the synopsis's structural
/// invariants (the parser alone would accept out-of-range or unsorted
/// entries, which later panic or silently mis-answer queries).
pub fn read_synopsis(path: &str) -> Result<SynopsisDoc, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value = Value::parse(&text).map_err(|e| format!("{path}: bad synopsis JSON: {e}"))?;
    let doc =
        SynopsisDoc::from_json(&value).map_err(|e| format!("{path}: bad synopsis JSON: {e}"))?;
    // Histogram payloads are validated on construction in `from_json`.
    if let SynopsisPayload::Wavelet(s) = &doc.payload {
        s.validate()
            .map_err(|e| format!("{path}: invalid synopsis: {e}"))?;
    }
    Ok(doc)
}

/// Ensures the parent directory of `path` exists.
pub fn ensure_parent(path: &str) -> Result<(), String> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).map_err(|e| format!("cannot create {parent:?}: {e}"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_roundtrip() {
        let dir = std::env::temp_dir().join("wsyn-cli-test-data");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.txt");
        let path = path.to_str().unwrap();
        write_data(path, &[1.5, -2.0, 3.25]).unwrap();
        assert_eq!(read_data(path).unwrap(), vec![1.5, -2.0, 3.25]);
    }

    #[test]
    fn data_skips_comments_and_blanks() {
        let dir = std::env::temp_dir().join("wsyn-cli-test-data2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.txt");
        std::fs::write(&path, "# header\n1.0\n\n2.0\n").unwrap();
        assert_eq!(read_data(path.to_str().unwrap()).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn malformed_synopsis_json_rejected_not_panicking() {
        let dir = std::env::temp_dir().join("wsyn-cli-test-evil");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("evil.json");
        std::fs::write(
            &path,
            r#"{"algorithm":"minmax","metric":"abs","objective":1.0,
                "synopsis":{"n":8,"entries":[[99,5.0]]}}"#,
        )
        .unwrap();
        let err = read_synopsis(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        std::fs::write(
            &path,
            r#"{"algorithm":"minmax","metric":"abs","objective":0.0,
                "synopsis":{"n":8,"entries":[[5,1.0],[2,3.0]]}}"#,
        )
        .unwrap();
        let err = read_synopsis(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("sorted"), "{err}");
    }

    #[test]
    fn synopsis_roundtrip() {
        let data = [2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0];
        let tree = wsyn_haar::ErrorTree1d::from_data(&data).unwrap();
        let syn = Synopsis1d::from_indices(&tree, &[0, 1, 5]);
        let doc = SynopsisDoc {
            algorithm: "minmax".into(),
            metric: Some("rel:1.0".into()),
            objective: Some(0.5),
            payload: SynopsisPayload::Wavelet(syn.clone()),
        };
        let dir = std::env::temp_dir().join("wsyn-cli-test-syn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.json");
        let path = path.to_str().unwrap();
        write_synopsis(path, &doc).unwrap();
        let back = read_synopsis(path).unwrap();
        assert_eq!(back.payload, SynopsisPayload::Wavelet(syn));
        assert_eq!(back.objective, Some(0.5));
    }

    #[test]
    fn histogram_synopsis_roundtrip() {
        let run = wsyn_hist::solve(
            &[1.0, 1.0, 5.0, 5.0, 5.0, 2.0, 2.0, 2.0],
            None,
            3,
            wsyn_hist::SplitStrategy::Binary,
        )
        .unwrap();
        let doc = SynopsisDoc {
            algorithm: "hist".into(),
            metric: Some("abs".into()),
            objective: Some(run.objective),
            payload: SynopsisPayload::Histogram(run.synopsis.clone()),
        };
        let dir = std::env::temp_dir().join("wsyn-cli-test-hist");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.json");
        let path = path.to_str().unwrap();
        write_synopsis(path, &doc).unwrap();
        let back = read_synopsis(path).unwrap();
        assert_eq!(back.algorithm, "hist");
        assert_eq!(back.payload, SynopsisPayload::Histogram(run.synopsis));
        // A malformed bucket list (unsorted starts) is rejected cleanly.
        std::fs::write(
            dir.join("bad.json"),
            r#"{"algorithm":"hist","metric":"abs","objective":0.0,
                "synopsis":{"n":8,"buckets":[[4,1.0],[0,2.0]]}}"#,
        )
        .unwrap();
        let err = read_synopsis(dir.join("bad.json").to_str().unwrap()).unwrap_err();
        assert!(err.contains("histogram"), "{err}");
    }
}
