//! File formats: data vectors (one f64 per line) and synopsis JSON.

use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};
use wsyn_synopsis::Synopsis1d;

/// Reads a data vector: one `f64` per line; blank lines and lines starting
/// with `#` are ignored.
pub fn read_data(path: &str) -> Result<Vec<f64>, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let v: f64 = line
            .parse()
            .map_err(|_| format!("{path}:{}: not a number: '{line}'", lineno + 1))?;
        out.push(v);
    }
    if out.is_empty() {
        return Err(format!("{path}: no data values"));
    }
    Ok(out)
}

/// Writes a data vector, one value per line.
pub fn write_data(path: &str, data: &[f64]) -> Result<(), String> {
    let body: String = data.iter().map(|v| format!("{v}\n")).collect();
    fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))
}

/// On-disk synopsis document: the synopsis plus provenance metadata.
#[derive(Debug, Serialize, Deserialize)]
pub struct SynopsisDoc {
    /// Which algorithm built it (`minmax`, `greedy`, `minrelvar-draw`).
    pub algorithm: String,
    /// Metric spec string (`abs` / `rel:<sanity>`), if applicable.
    pub metric: Option<String>,
    /// The guaranteed maximum error at build time (MinMaxErr only).
    pub objective: Option<f64>,
    /// The synopsis itself.
    pub synopsis: Synopsis1d,
}

/// Writes a synopsis document as pretty JSON.
pub fn write_synopsis(path: &str, doc: &SynopsisDoc) -> Result<(), String> {
    let json = serde_json::to_string_pretty(doc).map_err(|e| e.to_string())?;
    fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Reads a synopsis document, validating the synopsis's structural
/// invariants (serde alone would accept out-of-range or unsorted entries,
/// which later panic or silently mis-answer queries).
pub fn read_synopsis(path: &str) -> Result<SynopsisDoc, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc: SynopsisDoc =
        serde_json::from_str(&text).map_err(|e| format!("{path}: bad synopsis JSON: {e}"))?;
    doc.synopsis
        .validate()
        .map_err(|e| format!("{path}: invalid synopsis: {e}"))?;
    Ok(doc)
}

/// Ensures the parent directory of `path` exists.
pub fn ensure_parent(path: &str) -> Result<(), String> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).map_err(|e| format!("cannot create {parent:?}: {e}"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_roundtrip() {
        let dir = std::env::temp_dir().join("wsyn-cli-test-data");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.txt");
        let path = path.to_str().unwrap();
        write_data(path, &[1.5, -2.0, 3.25]).unwrap();
        assert_eq!(read_data(path).unwrap(), vec![1.5, -2.0, 3.25]);
    }

    #[test]
    fn data_skips_comments_and_blanks() {
        let dir = std::env::temp_dir().join("wsyn-cli-test-data2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.txt");
        std::fs::write(&path, "# header\n1.0\n\n2.0\n").unwrap();
        assert_eq!(read_data(path.to_str().unwrap()).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn malformed_synopsis_json_rejected_not_panicking() {
        let dir = std::env::temp_dir().join("wsyn-cli-test-evil");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("evil.json");
        std::fs::write(
            &path,
            r#"{"algorithm":"minmax","metric":"abs","objective":1.0,
                "synopsis":{"n":8,"entries":[[99,5.0]]}}"#,
        )
        .unwrap();
        let err = read_synopsis(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        std::fs::write(
            &path,
            r#"{"algorithm":"minmax","metric":"abs","objective":0.0,
                "synopsis":{"n":8,"entries":[[5,1.0],[2,3.0]]}}"#,
        )
        .unwrap();
        let err = read_synopsis(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("sorted"), "{err}");
    }

    #[test]
    fn synopsis_roundtrip() {
        let data = [2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0];
        let tree = wsyn_haar::ErrorTree1d::from_data(&data).unwrap();
        let syn = Synopsis1d::from_indices(&tree, &[0, 1, 5]);
        let doc = SynopsisDoc {
            algorithm: "minmax".into(),
            metric: Some("rel:1.0".into()),
            objective: Some(0.5),
            synopsis: syn.clone(),
        };
        let dir = std::env::temp_dir().join("wsyn-cli-test-syn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.json");
        let path = path.to_str().unwrap();
        write_synopsis(path, &doc).unwrap();
        let back = read_synopsis(path).unwrap();
        assert_eq!(back.synopsis, syn);
        assert_eq!(back.objective, Some(0.5));
    }
}
