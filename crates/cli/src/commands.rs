//! Subcommand implementations.

use wsyn_aqp::{bounds, QueryEngine1d, StepEngine};
use wsyn_datagen as datagen;
use wsyn_haar::transform;
use wsyn_obs::Collector;
use wsyn_serve::BuiltEngine;
use wsyn_synopsis::family::{GuaranteeKind, MetricSupport};
use wsyn_synopsis::thresholder::RunParams;
use wsyn_synopsis::{rmse, AnySynopsis, ErrorMetric};

use crate::args::{parse_metric, Args};
use crate::io::{self, SynopsisDoc, SynopsisPayload};

/// Top-level usage text.
pub const USAGE: &str = "\
usage: wsyn <command> [flags]

commands:
  generate   --kind zipf|bumps|piecewise --n <N> [--seed S] [--skew Z] [--total T] --out FILE
  transform  --input FILE
  build      --input FILE --budget B [--metric abs|rel:S]
             [--algo FAMILY]   (a synopsis family id; see 'wsyn families')
             --out FILE
             [--eps E]         (stream only: quantization step, default 0.1)
             [--report FILE]   (write a JSON run report: spans + counters)
  families   (list the registered synopsis families and their guarantees)
  eval       --synopsis FILE --input FILE [--metric abs|rel:S]
  query      --synopsis FILE  point <i> | range <lo> <hi> | avg <lo> <hi>
  query      --server HOST:PORT --column NAME  point <i> | range <lo> <hi> | avg <lo> <hi>
             (answers from a running wsyn-serve column, with its live guarantee)
  serve      [--addr HOST:PORT] [--shards N] [--queue-depth N] [--tolerance T]
             (sharded multi-tenant synopsis server; see DESIGN.md §14)

data files hold one value per line ('#' comments allowed); synopses are JSON.";

/// Dispatches a full argv (without the program name).
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err("no command given".into());
    };
    match cmd.as_str() {
        "generate" => generate(&Args::parse(rest)?),
        "transform" => transform_cmd(&Args::parse(rest)?),
        "build" => build(&Args::parse(rest)?),
        "families" => families(&Args::parse(rest)?),
        "eval" => eval(&Args::parse(rest)?),
        "query" => query(&Args::parse(rest)?),
        "serve" => serve(&Args::parse(rest)?),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Prints the synopsis-family registry: every `--algo` id the CLI, the
/// server, and the conformance suite accept, with its guarantee kind
/// and metric support.
fn families(a: &Args) -> Result<(), String> {
    a.ensure_known(&[])?;
    println!("{:<12} {:<13} {:<10} summary", "id", "guarantee", "metrics");
    for family in wsyn_serve::registry().families() {
        let guarantee = match family.guarantee {
            GuaranteeKind::Deterministic => "deterministic",
            GuaranteeKind::Measured => "measured",
        };
        let metrics = match family.metrics {
            MetricSupport::Both => "abs, rel",
            MetricSupport::AbsoluteOnly => "abs",
            MetricSupport::RelativeOnly => "rel",
        };
        println!(
            "{:<12} {:<13} {:<10} {}",
            family.id, guarantee, metrics, family.summary
        );
    }
    println!(
        "\n(server builds also accept 'auto': solve minmax and hist, keep the\n\
         smaller objective, ties to minmax)"
    );
    Ok(())
}

fn generate(a: &Args) -> Result<(), String> {
    a.ensure_known(&["kind", "n", "seed", "skew", "total", "out"])?;
    let kind = a.req("kind")?;
    let n: usize = a.req_parse("n")?;
    if !wsyn_haar::is_pow2(n) {
        return Err(format!("--n must be a power of two, got {n}"));
    }
    let seed: u64 = a.opt_parse("seed", 0u64)?;
    let out = a.req("out")?;
    let data = match kind {
        "zipf" => {
            let skew: f64 = a.opt_parse("skew", 1.0f64)?;
            let total: f64 = a.opt_parse("total", 100_000.0f64)?;
            datagen::zipf(n, skew, total, datagen::ZipfPlacement::Shuffled, seed)
        }
        "bumps" => datagen::gaussian_bumps(n, 5, (50.0, 400.0), (0.02, 0.12), 2.0, seed),
        "piecewise" => datagen::piecewise_constant(n, 10, (1.0, 500.0), 0.0, seed),
        other => return Err(format!("unknown --kind '{other}'")),
    };
    io::ensure_parent(out)?;
    io::write_data(out, &data)?;
    println!("wrote {n} values ({kind}, seed {seed}) to {out}");
    Ok(())
}

fn transform_cmd(a: &Args) -> Result<(), String> {
    a.ensure_known(&["input"])?;
    let data = io::read_data(a.req("input")?)?;
    let w = transform::forward(&data).map_err(|e| e.to_string())?;
    // Bulk output is routinely piped into `head`/`grep`; treat a closed
    // pipe as a normal early exit instead of panicking.
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for (j, c) in w.iter().enumerate() {
        if let Err(e) = writeln!(out, "{j}\t{c}") {
            if e.kind() == std::io::ErrorKind::BrokenPipe {
                std::process::exit(0);
            }
            return Err(format!("cannot write to stdout: {e}"));
        }
    }
    Ok(())
}

fn build(a: &Args) -> Result<(), String> {
    a.ensure_known(&["input", "budget", "metric", "algo", "out", "report", "eps"])?;
    let data = io::read_data(a.req("input")?)?;
    let budget: usize = a.req_parse("budget")?;
    let metric_spec = a.opt("metric").unwrap_or("rel:1.0").to_string();
    let metric = parse_metric(&metric_spec)?;
    let algo = a.opt("algo").unwrap_or("minmax");
    let out = a.req("out")?;
    let report_path = a.opt("report").map(str::to_string);
    // Every family answers the same (budget, metric) question; the
    // registry resolves the id to a solver and the uniform trait drives
    // it. Unknown ids fail with the registry's canonical error listing
    // every valid id.
    let thresholder = wsyn_serve::registry()
        .build(algo, &data)
        .map_err(|e| e.to_string())?;
    // Collection is free unless a report was asked for (no-op collector).
    let obs = if report_path.is_some() {
        Collector::recording()
    } else {
        Collector::noop()
    };
    let mut params = RunParams::new(budget, metric).obs(obs.clone());
    if let Some(eps) = a.opt("eps") {
        let eps: f64 = eps
            .parse()
            .map_err(|e| format!("--eps must be a number: {e}"))?;
        params = params.eps(eps);
    }
    let run = thresholder
        .threshold_with(&params)
        .map_err(|e| e.to_string())?;
    let payload = match run.synopsis {
        AnySynopsis::One(s) => SynopsisPayload::Wavelet(s),
        AnySynopsis::Histogram(s) => SynopsisPayload::Histogram(s),
        _ => return Err("the CLI builds 1-D synopses only".into()),
    };
    if thresholder.has_guarantee() {
        println!(
            "{}: retained {} {}, guaranteed max error {:.6}",
            thresholder.name(),
            payload.len(),
            payload.unit(),
            run.objective
        );
        if let (ErrorMetric::Relative { sanity }, true) = (metric, run.objective >= 1.0 - 1e-12) {
            eprintln!(
                "note: the max relative error saturates at {:.3} — the budget cannot \
                 cover every spike (the optimum may retain few or no coefficients). \
                 Consider a larger --budget, a larger sanity bound than {sanity}, or \
                 --metric abs.",
                run.objective
            );
        }
    } else {
        println!(
            "{}: retained {} {}, measured max error {:.6} (no guarantee)",
            thresholder.name(),
            payload.len(),
            payload.unit(),
            run.objective
        );
    }
    let doc = SynopsisDoc {
        algorithm: thresholder.name().into(),
        metric: thresholder.has_guarantee().then(|| metric_spec.clone()),
        objective: thresholder.has_guarantee().then_some(run.objective),
        payload,
    };
    io::ensure_parent(out)?;
    io::write_synopsis(out, &doc)?;
    println!("wrote synopsis to {out}");
    if let Some(path) = report_path {
        let report = obs
            .report(wsyn_obs::run_meta(thresholder.name(), budget, &metric_spec))
            .ok_or_else(|| "recording collector lost".to_string())?;
        io::ensure_parent(&path)?;
        std::fs::write(&path, report.render()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote run report to {path}");
    }
    Ok(())
}

fn eval(a: &Args) -> Result<(), String> {
    a.ensure_known(&["synopsis", "input", "metric"])?;
    let doc = io::read_synopsis(a.req("synopsis")?)?;
    let data = io::read_data(a.req("input")?)?;
    if data.len() != doc.payload.n() {
        return Err(format!(
            "domain mismatch: synopsis N = {}, data N = {}",
            doc.payload.n(),
            data.len()
        ));
    }
    let metric_spec = a
        .opt("metric")
        .map(str::to_string)
        .or_else(|| doc.metric.clone())
        .unwrap_or_else(|| "rel:1.0".into());
    let metric = parse_metric(&metric_spec)?;
    let recon = doc.payload.reconstruct();
    println!("algorithm          : {}", doc.algorithm);
    println!("{:<19}: {}", doc.payload.unit(), doc.payload.len());
    if doc.payload.is_empty() {
        println!("note               : empty synopsis — reconstruction is all zeros");
    }
    println!("metric             : {metric_spec}");
    println!(
        "max error          : {:.6}",
        metric.max_error(&data, &recon)
    );
    println!(
        "mean error         : {:.6}",
        metric.mean_error(&data, &recon)
    );
    println!("rmse               : {:.6}", rmse(&data, &recon));
    if let Some(obj) = doc.objective {
        println!("built-in guarantee : {obj:.6}");
    }
    Ok(())
}

/// Runs a `wsyn-serve` server in the foreground until a client sends a
/// `shutdown` request.
fn serve(a: &Args) -> Result<(), String> {
    a.ensure_known(&["addr", "shards", "queue-depth", "tolerance"])?;
    let addr = a.opt("addr").unwrap_or("127.0.0.1:7878");
    let config = wsyn_serve::ServeConfig {
        shards: a.opt_parse("shards", 0usize)?,
        queue_depth: a.opt_parse("queue-depth", 64usize)?,
        tolerance: a.opt_parse("tolerance", 2.0f64)?,
    };
    let server = wsyn_serve::Server::bind(addr, &config)?;
    println!("wsyn serving on {}", server.local_addr());
    server.run()
}

/// The shared grammar of both query modes: `point <i>`, `range <lo>
/// <hi>`, or `avg <lo> <hi>`, validated against the domain size `n`.
fn parse_query(pos: &[String], n: usize) -> Result<wsyn_serve::QueryKind, String> {
    let parse_idx = |s: &str, what: &str| -> Result<usize, String> {
        let v: usize = s.parse().map_err(|_| format!("bad {what} '{s}'"))?;
        if v > n {
            return Err(format!("{what} {v} out of range (N = {n})"));
        }
        Ok(v)
    };
    match pos.first().map(String::as_str) {
        Some("point") => {
            let [_, i] = pos else {
                return Err("usage: query point <i>".into());
            };
            let i = parse_idx(i, "index")?;
            if i >= n {
                return Err(format!("index {i} out of range (N = {n})"));
            }
            Ok(wsyn_serve::QueryKind::Point(i))
        }
        Some("range") | Some("avg") => {
            let [kind, lo, hi] = pos else {
                return Err("usage: query range|avg <lo> <hi>".into());
            };
            let lo = parse_idx(lo, "lo")?;
            let hi = parse_idx(hi, "hi")?;
            if lo > hi {
                return Err(format!("empty range [{lo}, {hi})"));
            }
            if kind == "range" {
                Ok(wsyn_serve::QueryKind::RangeSum(lo, hi))
            } else {
                if lo == hi {
                    return Err("empty range for avg".into());
                }
                Ok(wsyn_serve::QueryKind::RangeAvg(lo, hi))
            }
        }
        _ => Err("usage: query point <i> | range <lo> <hi> | avg <lo> <hi>".into()),
    }
}

/// Client mode: answers a query from a running server's column, under
/// the column's *live* guarantee (which may have drifted past the
/// built objective since the last rebuild — the local `--synopsis` mode
/// can only report the frozen build-time guarantee).
fn query_server(a: &Args) -> Result<(), String> {
    a.ensure_known(&["server", "column"])?;
    let addr = a.req("server")?;
    let column = a.req("column")?;
    let mut client = wsyn_serve::Client::connect(addr)?;
    let info = client.info(column)?;
    let n = info
        .get("n")
        .and_then(wsyn_core::json::Value::as_usize)
        .ok_or_else(|| format!("server sent no domain size for '{column}'"))?;
    let kind = parse_query(&a.positional, n)?;
    let answer = client.query(column, kind, false)?;
    let est = answer
        .get("est")
        .and_then(wsyn_core::json::Value::as_f64)
        .ok_or_else(|| "server sent no estimate".to_string())?;
    match kind {
        wsyn_serve::QueryKind::Point(i) => println!("point({i}) = {est}"),
        wsyn_serve::QueryKind::RangeSum(lo, hi) => println!("sum[{lo}, {hi}) = {est}"),
        wsyn_serve::QueryKind::RangeAvg(lo, hi) => println!("avg[{lo}, {hi}) = {est}"),
    }
    if let Some(iv) = answer
        .get("interval")
        .and_then(wsyn_core::json::Value::as_array)
    {
        // Non-finite interval ends serialize as JSON null; restore them.
        let lo = iv
            .first()
            .and_then(wsyn_core::json::Value::as_f64)
            .unwrap_or(f64::NEG_INFINITY);
        let hi = iv
            .get(1)
            .and_then(wsyn_core::json::Value::as_f64)
            .unwrap_or(f64::INFINITY);
        println!("guaranteed interval: [{lo}, {hi}]");
    }
    Ok(())
}

fn query(a: &Args) -> Result<(), String> {
    if a.opt("server").is_some() {
        return query_server(a);
    }
    a.ensure_known(&["synopsis"])?;
    let doc = io::read_synopsis(a.req("synopsis")?)?;
    // Both families answer the same workload; the interval derivations
    // below consume only (estimate, guarantee) pairs.
    let engine = match &doc.payload {
        SynopsisPayload::Wavelet(s) => BuiltEngine::Wavelet(QueryEngine1d::new(s.clone())),
        SynopsisPayload::Histogram(s) => BuiltEngine::Hist(StepEngine::new(s.clone())),
    };
    let pos = &a.positional;
    let n = doc.payload.n();
    let parse_idx = |s: &str, what: &str| -> Result<usize, String> {
        let v: usize = s.parse().map_err(|_| format!("bad {what} '{s}'"))?;
        if v > n {
            return Err(format!("{what} {v} out of range (N = {n})"));
        }
        Ok(v)
    };
    match pos.first().map(String::as_str) {
        Some("point") => {
            let [_, i] = pos.as_slice() else {
                return Err("usage: query point <i>".into());
            };
            let i = parse_idx(i, "index")?;
            if i >= n {
                return Err(format!("index {i} out of range (N = {n})"));
            }
            let est = engine.point(i) + 0.0; // normalizes -0
            println!("point({i}) = {est}");
            if let (Some(obj), Some(metric)) = (doc.objective, doc.metric.as_deref()) {
                let iv = match parse_metric(metric)? {
                    ErrorMetric::Absolute => bounds::point_absolute(est, obj),
                    ErrorMetric::Relative { sanity } => bounds::point_relative(est, obj, sanity),
                };
                println!("guaranteed interval: [{}, {}]", iv.lo, iv.hi);
            }
        }
        Some("range") | Some("avg") => {
            let [kind, lo, hi] = pos.as_slice() else {
                return Err("usage: query range|avg <lo> <hi>".into());
            };
            let lo = parse_idx(lo, "lo")?;
            let hi = parse_idx(hi, "hi")?;
            if lo > hi {
                return Err(format!("empty range [{lo}, {hi})"));
            }
            if kind == "range" {
                let est = engine.range_sum(lo..hi) + 0.0; // normalizes -0
                println!("sum[{lo}, {hi}) = {est}");
                if let (Some(obj), Some("abs")) = (doc.objective, doc.metric.as_deref()) {
                    let iv = bounds::range_sum_absolute(est, obj, hi - lo);
                    println!("guaranteed interval: [{}, {}]", iv.lo, iv.hi);
                }
            } else {
                if lo == hi {
                    return Err("empty range for avg".into());
                }
                println!("avg[{lo}, {hi}) = {}", engine.range_avg(lo..hi) + 0.0);
            }
        }
        _ => return Err("usage: query point <i> | range <lo> <hi> | avg <lo> <hi>".into()),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_string()).collect()
    }

    fn tmpdir(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("wsyn-cli-{name}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir.to_str().unwrap().to_string()
    }

    #[test]
    fn end_to_end_generate_build_eval_query() {
        let dir = tmpdir("e2e");
        let data_path = format!("{dir}/data.txt");
        let syn_path = format!("{dir}/syn.json");
        dispatch(&v(&[
            "generate", "--kind", "zipf", "--n", "64", "--seed", "3", "--out", &data_path,
        ]))
        .unwrap();
        dispatch(&v(&[
            "build", "--input", &data_path, "--budget", "8", "--metric", "rel:1.0", "--algo",
            "minmax", "--out", &syn_path,
        ]))
        .unwrap();
        dispatch(&v(&[
            "eval",
            "--synopsis",
            &syn_path,
            "--input",
            &data_path,
        ]))
        .unwrap();
        dispatch(&v(&["query", "--synopsis", &syn_path, "point", "5"])).unwrap();
        dispatch(&v(&["query", "--synopsis", &syn_path, "range", "0", "32"])).unwrap();
        dispatch(&v(&["query", "--synopsis", &syn_path, "avg", "0", "64"])).unwrap();
    }

    #[test]
    fn build_greedy_and_eval() {
        let dir = tmpdir("greedy");
        let data_path = format!("{dir}/data.txt");
        let syn_path = format!("{dir}/syn.json");
        crate::io::write_data(&data_path, &[2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0]).unwrap();
        dispatch(&v(&[
            "build", "--input", &data_path, "--budget", "3", "--algo", "greedy", "--out", &syn_path,
        ]))
        .unwrap();
        let doc = crate::io::read_synopsis(&syn_path).unwrap();
        assert_eq!(doc.algorithm, "greedy");
        assert!(doc.payload.len() <= 3);
    }

    #[test]
    fn build_stream_and_eval() {
        let dir = tmpdir("streambuild");
        let data_path = format!("{dir}/data.txt");
        let syn_path = format!("{dir}/syn.json");
        let data = [2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0];
        crate::io::write_data(&data_path, &data).unwrap();
        dispatch(&v(&[
            "build", "--input", &data_path, "--budget", "3", "--metric", "abs", "--algo", "stream",
            "--eps", "0.25", "--out", &syn_path,
        ]))
        .unwrap();
        let doc = crate::io::read_synopsis(&syn_path).unwrap();
        assert_eq!(doc.algorithm, "stream");
        assert!(doc.payload.len() <= 3);
        // The streaming objective is a guarantee, so it is persisted and
        // must upper-bound the measured error.
        let objective = doc.objective.expect("stream carries a guarantee");
        let measured =
            wsyn_synopsis::ErrorMetric::absolute().max_error(&data, &doc.payload.reconstruct());
        assert!(measured <= objective + 1e-9);
        // The streaming builder serves the absolute metric only.
        assert!(dispatch(&v(&[
            "build",
            "--input",
            &data_path,
            "--budget",
            "3",
            "--metric",
            "rel:1.0",
            "--algo",
            "stream",
            "--out",
            &format!("{dir}/rel.json"),
        ]))
        .is_err());
    }

    #[test]
    fn build_probabilistic_baselines() {
        let dir = tmpdir("probbuild");
        let data_path = format!("{dir}/data.txt");
        crate::io::write_data(&data_path, &[2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0]).unwrap();
        for algo in ["minrelvar", "minrelbias"] {
            let syn_path = format!("{dir}/{algo}.json");
            dispatch(&v(&[
                "build", "--input", &data_path, "--budget", "3", "--metric", "rel:1.0", "--algo",
                algo, "--out", &syn_path,
            ]))
            .unwrap();
            let doc = crate::io::read_synopsis(&syn_path).unwrap();
            assert_eq!(doc.algorithm, algo);
            // Baselines carry no guarantee, so none is persisted.
            assert!(doc.objective.is_none());
        }
        // The GG baselines are relative-error algorithms; absolute is
        // rejected through the uniform interface rather than mis-served.
        assert!(dispatch(&v(&[
            "build",
            "--input",
            &data_path,
            "--budget",
            "3",
            "--metric",
            "abs",
            "--algo",
            "minrelvar",
            "--out",
            &format!("{dir}/abs.json"),
        ]))
        .is_err());
    }

    #[test]
    fn build_hist_eval_query_end_to_end() {
        let dir = tmpdir("histbuild");
        let data_path = format!("{dir}/data.txt");
        let syn_path = format!("{dir}/syn.json");
        let data = [2.0, 2.0, 2.0, 9.0, 9.0, 9.0, 9.0, 4.0];
        crate::io::write_data(&data_path, &data).unwrap();
        dispatch(&v(&[
            "build", "--input", &data_path, "--budget", "3", "--metric", "abs", "--algo", "hist",
            "--out", &syn_path,
        ]))
        .unwrap();
        let doc = crate::io::read_synopsis(&syn_path).unwrap();
        assert_eq!(doc.algorithm, "hist");
        assert_eq!(doc.objective, Some(0.0), "three plateaus, three buckets");
        assert!(matches!(doc.payload, SynopsisPayload::Histogram(_)));
        dispatch(&v(&[
            "eval",
            "--synopsis",
            &syn_path,
            "--input",
            &data_path,
        ]))
        .unwrap();
        dispatch(&v(&["query", "--synopsis", &syn_path, "point", "4"])).unwrap();
        dispatch(&v(&["query", "--synopsis", &syn_path, "range", "0", "8"])).unwrap();
        dispatch(&v(&["query", "--synopsis", &syn_path, "avg", "2", "6"])).unwrap();
        assert!(dispatch(&v(&["query", "--synopsis", &syn_path, "point", "99"])).is_err());
    }

    #[test]
    fn every_registry_family_builds_through_the_cli() {
        // The --algo grammar IS the registry: every registered id
        // builds, and an unknown id fails with the registry's error
        // (listing the whole valid set). This is the CLI's half of the
        // one-id-set contract shared with the server and conform.
        let dir = tmpdir("allfamilies");
        let data_path = format!("{dir}/data.txt");
        crate::io::write_data(&data_path, &[2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0]).unwrap();
        for family in wsyn_serve::registry().families() {
            let metric = match family.metrics {
                MetricSupport::Both | MetricSupport::AbsoluteOnly => "abs",
                MetricSupport::RelativeOnly => "rel:1.0",
            };
            let syn_path = format!("{dir}/{}.json", family.id);
            dispatch(&v(&[
                "build", "--input", &data_path, "--budget", "3", "--metric", metric, "--algo",
                family.id, "--out", &syn_path,
            ]))
            .unwrap_or_else(|e| panic!("family '{}' must build: {e}", family.id));
            assert_eq!(
                crate::io::read_synopsis(&syn_path).unwrap().algorithm,
                family.id
            );
        }
        let err = dispatch(&v(&[
            "build",
            "--input",
            &data_path,
            "--budget",
            "3",
            "--algo",
            "zorp",
            "--out",
            &format!("{dir}/zorp.json"),
        ]))
        .unwrap_err();
        for id in wsyn_serve::registry().ids() {
            assert!(err.contains(id), "error must list '{id}': {err}");
        }
    }

    #[test]
    fn families_subcommand_prints() {
        dispatch(&v(&["families"])).unwrap();
        assert!(dispatch(&v(&["families", "--bogus", "1"])).is_err());
    }

    #[test]
    fn build_report_is_deterministic_and_nonempty() {
        let dir = tmpdir("report");
        let data_path = format!("{dir}/data.txt");
        crate::io::write_data(&data_path, &[2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0]).unwrap();
        let mut renders = Vec::new();
        for round in 0..2 {
            let syn_path = format!("{dir}/syn{round}.json");
            let rep_path = format!("{dir}/rep{round}.json");
            dispatch(&v(&[
                "build", "--input", &data_path, "--budget", "3", "--metric", "abs", "--algo",
                "minmax", "--out", &syn_path, "--report", &rep_path,
            ]))
            .unwrap();
            let text = std::fs::read_to_string(&rep_path).unwrap();
            let value = wsyn_core::json::Value::parse(&text).unwrap();
            let report = wsyn_obs::Report::from_json(&value).unwrap();
            assert_eq!(report.root.name, wsyn_obs::ROOT_SPAN);
            assert!(
                !report.root.children.is_empty(),
                "span tree must be non-empty"
            );
            renders.push(report.strip_timing().render());
        }
        assert_eq!(
            renders[0], renders[1],
            "untimed reports must be byte-identical"
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(dispatch(&v(&["nope"])).is_err());
        assert!(dispatch(&v(&[])).is_err());
        assert!(dispatch(&v(&[
            "generate", "--kind", "zipf", "--n", "63", "--out", "/tmp/x"
        ]))
        .is_err()); // not a power of two
        assert!(dispatch(&v(&[
            "build",
            "--input",
            "/nonexistent",
            "--budget",
            "4",
            "--out",
            "/tmp/x"
        ]))
        .is_err());
    }

    #[test]
    fn query_bad_args() {
        let dir = tmpdir("querybad");
        let data_path = format!("{dir}/data.txt");
        let syn_path = format!("{dir}/syn.json");
        crate::io::write_data(&data_path, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        dispatch(&v(&[
            "build", "--input", &data_path, "--budget", "2", "--out", &syn_path,
        ]))
        .unwrap();
        assert!(dispatch(&v(&["query", "--synopsis", &syn_path, "point"])).is_err());
        assert!(dispatch(&v(&["query", "--synopsis", &syn_path, "point", "99"])).is_err());
        assert!(dispatch(&v(&["query", "--synopsis", &syn_path, "range", "3", "1"])).is_err());
    }

    #[test]
    fn query_server_mode_end_to_end() {
        // A real server on an ephemeral port; the CLI queries it as a
        // client and validates its own argument handling against the
        // served column's domain.
        let server =
            wsyn_serve::Server::bind("127.0.0.1:0", &wsyn_serve::ServeConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.run());
        let data: Vec<f64> = (0..16).map(|i| f64::from(i % 7) * 3.0).collect();
        let mut client = wsyn_serve::Client::connect(&addr).unwrap();
        client.put("cli-test", &data).unwrap();
        client.build("cli-test", 4, "abs", false).unwrap();

        for q in [
            vec!["point", "5"],
            vec!["range", "0", "8"],
            vec!["avg", "0", "16"],
        ] {
            let mut argv = v(&["query", "--server", &addr, "--column", "cli-test"]);
            argv.extend(q.iter().map(|s| (*s).to_string()));
            dispatch(&argv).unwrap();
        }
        // Out-of-range and unknown-column errors surface cleanly.
        assert!(dispatch(&v(&[
            "query", "--server", &addr, "--column", "cli-test", "point", "99"
        ]))
        .is_err());
        assert!(dispatch(&v(&[
            "query", "--server", &addr, "--column", "ghost", "point", "0"
        ]))
        .is_err());

        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn transform_prints_coefficients() {
        let dir = tmpdir("transform");
        let data_path = format!("{dir}/data.txt");
        crate::io::write_data(&data_path, &[2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0]).unwrap();
        dispatch(&v(&["transform", "--input", &data_path])).unwrap();
    }
}
