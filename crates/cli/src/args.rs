//! Minimal, dependency-free `--flag value` argument parsing.

use std::collections::HashMap;

/// Parsed command line: positional arguments plus `--key value` flags.
#[derive(Debug, Default)]
pub struct Args {
    pub positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses `argv` (after the subcommand). Every token starting with
    /// `--` consumes the following token as its value.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = argv.iter();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} expects a value"))?;
                if out.flags.insert(key.to_string(), value.clone()).is_some() {
                    return Err(format!("flag --{key} given twice"));
                }
            } else {
                out.positional.push(tok.clone());
            }
        }
        Ok(out)
    }

    /// A required flag.
    pub fn req(&self, key: &str) -> Result<&str, String> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// An optional flag.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// An optional flag parsed into `T`, with a default.
    pub fn opt_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{key}: cannot parse '{v}'")),
        }
    }

    /// A required flag parsed into `T`.
    pub fn req_parse<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let v = self.req(key)?;
        v.parse()
            .map_err(|_| format!("flag --{key}: cannot parse '{v}'"))
    }

    /// Errors on unknown flags (call after reading all expected ones).
    pub fn ensure_known(&self, known: &[&str]) -> Result<(), String> {
        for key in self.flags.keys() {
            if !known.contains(&key.as_str()) {
                return Err(format!("unknown flag --{key}"));
            }
        }
        Ok(())
    }
}

/// Parses a metric spec: `abs` or `rel:<sanity>`.
pub fn parse_metric(spec: &str) -> Result<wsyn_synopsis::ErrorMetric, String> {
    if spec == "abs" {
        return Ok(wsyn_synopsis::ErrorMetric::absolute());
    }
    if let Some(s) = spec.strip_prefix("rel:") {
        let sanity: f64 = s
            .parse()
            .map_err(|_| format!("bad sanity bound in metric '{spec}'"))?;
        if sanity <= 0.0 {
            return Err("sanity bound must be positive".into());
        }
        return Ok(wsyn_synopsis::ErrorMetric::relative(sanity));
    }
    Err(format!(
        "unknown metric '{spec}' (expected 'abs' or 'rel:<sanity>')"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = Args::parse(&v(&["point", "--n", "8", "5"])).unwrap();
        assert_eq!(a.positional, vec!["point", "5"]);
        assert_eq!(a.req("n").unwrap(), "8");
        assert_eq!(a.opt("missing"), None);
        assert_eq!(a.opt_parse("n", 0usize).unwrap(), 8);
    }

    #[test]
    fn rejects_dangling_flag_and_duplicates() {
        assert!(Args::parse(&v(&["--n"])).is_err());
        assert!(Args::parse(&v(&["--n", "1", "--n", "2"])).is_err());
    }

    #[test]
    fn unknown_flags_detected() {
        let a = Args::parse(&v(&["--foo", "1"])).unwrap();
        assert!(a.ensure_known(&["bar"]).is_err());
        assert!(a.ensure_known(&["foo"]).is_ok());
    }

    #[test]
    fn metric_specs() {
        assert_eq!(
            parse_metric("abs").unwrap(),
            wsyn_synopsis::ErrorMetric::absolute()
        );
        assert_eq!(
            parse_metric("rel:2.5").unwrap(),
            wsyn_synopsis::ErrorMetric::Relative { sanity: 2.5 }
        );
        assert!(parse_metric("rel:0").is_err());
        assert!(parse_metric("l2").is_err());
    }
}
