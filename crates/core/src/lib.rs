//! # wsyn-core — the shared dynamic-programming substrate
//!
//! Every maximum-error guarantee in Garofalakis & Kumar (PODS 2004) is
//! computed by a dynamic program over the same abstract state — a
//! `(node, budget, incoming-error)` triple. This crate centralizes the
//! machinery those DPs share, so the six solvers in `wsyn-synopsis`
//! (and the probabilistic baselines in `wsyn-prob`) stop hand-rolling
//! their own memo tables and row storage:
//!
//! * [`StateTable`] — an open-addressing memo table keyed on a packed
//!   `u128` state with a hand-rolled multiply-xor (FxHash-style) hasher.
//!   Insert-only workloads (every top-down DP here) probe it 2–4× faster
//!   than `std::collections::HashMap`'s SipHash on tuple keys, and it
//!   derives probe displacement so table pressure is visible in
//!   [`DpStats`] without a counter in the lookup path.
//! * [`RowArena`] / [`RowId`] — arena-allocated DP rows (a value and a
//!   choice slice per node state) replacing per-row `Rc` clones: one
//!   allocation pool per solve, `Copy` handles in the memo.
//! * [`DpWorkspace`] — a reusable table+arena bundle for repeated runs:
//!   B-sweeps keep the memo warm across budgets (states are keyed
//!   `(node, budget, error)`, so smaller-budget runs hit existing
//!   entries verbatim), and τ-sweeps / streaming rebuilds reuse the
//!   allocations via a capacity-retaining `clear`.
//! * [`DpStats`] — the unified statistics block every solver reports:
//!   materialized states, leaf evaluations, hash probes, peak live
//!   entries.
//! * [`json`] — a small dependency-free JSON reader/writer used by the
//!   CLI persistence layer and the benchmark artifact emitters.
//!
//! The crate is dependency-free by policy (DESIGN.md §6): hasher, table,
//! arena, and JSON are all hand-rolled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod json;
pub mod pool;

pub use error::WsynError;
pub use pool::Pool;

/// Unified statistics block reported by every DP solver in the workspace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpStats {
    /// Distinct `(node, budget, error)` states materialized.
    pub states: usize,
    /// Leaf-error evaluations (`|e| / denom`).
    pub leaf_evals: usize,
    /// Memo-table probe displacement — slots between each resident
    /// entry's hashed home slot and where it lives. `0` means every
    /// entry sits at its home slot.
    pub probes: usize,
    /// Peak number of memoized entries simultaneously resident.
    pub peak_live: usize,
}

impl DpStats {
    /// Component-wise sum — for aggregating per-τ or per-thread runs.
    #[must_use]
    pub fn merged(self, other: DpStats) -> DpStats {
        DpStats {
            states: self.states + other.states,
            leaf_evals: self.leaf_evals + other.leaf_evals,
            probes: self.probes + other.probes,
            peak_live: self.peak_live.max(other.peak_live),
        }
    }

    /// Serializes the counters as a JSON object with a stable field
    /// order — the persistence hook the conformance harness uses to
    /// record per-run DP statistics next to golden solver outputs.
    #[must_use]
    pub fn to_json(&self) -> json::Value {
        json::object(vec![
            ("states", json::Value::Number(self.states as f64)),
            ("leaf_evals", json::Value::Number(self.leaf_evals as f64)),
            ("probes", json::Value::Number(self.probes as f64)),
            ("peak_live", json::Value::Number(self.peak_live as f64)),
        ])
    }

    /// Parses counters serialized by [`DpStats::to_json`].
    ///
    /// # Errors
    /// Names the first missing or non-numeric field.
    pub fn from_json(v: &json::Value) -> Result<DpStats, String> {
        let field = |name: &str| {
            v.get(name)
                .and_then(json::Value::as_usize)
                .ok_or_else(|| format!("DpStats: missing or non-numeric field `{name}`"))
        };
        Ok(DpStats {
            states: field("states")?,
            leaf_evals: field("leaf_evals")?,
            probes: field("probes")?,
            peak_live: field("peak_live")?,
        })
    }
}

/// Packs a one-dimensional DP state `(node id, budget, error bits)` into
/// the `u128` key a [`StateTable`] expects.
#[inline]
#[must_use]
pub fn pack_state_1d(node: u32, budget: u32, error_bits: u64) -> u128 {
    (u128::from(node) << 96) | (u128::from(budget) << 64) | u128::from(error_bits)
}

/// Packs a multi-dimensional DP state `(packed node key, error bits)`.
/// The node key is the 64-bit `(level, index)` packing produced by
/// `wsyn_haar::nd::NodeRef::key`.
#[inline]
#[must_use]
pub fn pack_state_nd(node_key: u64, error_bits: u64) -> u128 {
    (u128::from(node_key) << 64) | u128::from(error_bits)
}

/// Whether `x` is exactly `±0.0`, decided on the bit pattern.
///
/// The determinism lint (`wsyn-analyze`, rule `float-eq`) bans float
/// `==`/`!=` in solver crates because accidental equality tie-breaks on
/// computed values are where reproducibility quietly dies. The solvers
/// *do* need one exact predicate — "is this coefficient structurally
/// zero?" (a zero coefficient never earns budget) — and this is it:
/// shifting out the sign bit leaves zero for `+0.0` and `-0.0` only.
/// `NaN` is not zero.
#[inline]
#[must_use]
pub fn is_zero(x: f64) -> bool {
    x.to_bits() << 1 == 0
}

/// Bit-identical `f64` equality (`a` and `b` have the same bit pattern).
///
/// The companion to [`is_zero`] for the rare solver-path comparisons
/// that genuinely mean "the *same* value, reproducibly": memo keys,
/// geometric-breakpoint membership, certification checks. Unlike `==`
/// this distinguishes `+0.0` from `-0.0` and equates `NaN` with itself
/// bit-for-bit — i.e. it is the equivalence the DP state packing
/// (`f64::to_bits` keys) already uses.
#[inline]
#[must_use]
pub fn total_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

/// Checked `usize → u32` narrowing for DP state fields and row indices.
///
/// The lint rule `lossy-cast` bans bare narrowing `as` casts in solver
/// crates; every node-id/budget/allotment narrowing routes through here
/// instead so the (out-of-spec) overflow fails loudly rather than
/// wrapping into a wrong-but-plausible DP state.
///
/// # Panics
/// Panics when `x` does not fit in `u32` — all solvers bound node count
/// and budget well below `2^32`.
#[inline]
#[must_use]
pub fn narrow_u32(x: usize) -> u32 {
    match u32::try_from(x) {
        Ok(v) => v,
        // The single checked-narrowing choke point; reaching this arm
        // means a caller broke its documented N < 2^32 bound and no
        // recoverable answer exists.
        // wsyn: allow(no-panic)
        Err(_) => panic!("narrow_u32: {x} exceeds a u32 DP state field"),
    }
}

/// Checked `usize → u8` narrowing for tree-level counters.
///
/// Companion to [`narrow_u32`] for the `u8` level fields of
/// multi-dimensional error-tree nodes (`level ≤ 63` on any machine-word
/// domain, so overflow again means a broken caller invariant).
///
/// # Panics
/// Panics when `x` does not fit in `u8`.
#[inline]
#[must_use]
pub fn narrow_u8(x: usize) -> u8 {
    match u8::try_from(x) {
        Ok(v) => v,
        // Same contract as narrow_u32: fail loudly at the one choke point.
        // wsyn: allow(no-panic)
        Err(_) => panic!("narrow_u8: {x} exceeds a u8 tree-level field"),
    }
}

/// Checked `usize → i32` narrowing for exponent arguments (`powi` and
/// friends take `i32`; dimension/level counts are tiny by construction).
///
/// # Panics
/// Panics when `x` does not fit in `i32`.
#[inline]
#[must_use]
pub fn narrow_i32(x: usize) -> i32 {
    match i32::try_from(x) {
        Ok(v) => v,
        // Same contract as narrow_u32: fail loudly at the one choke point.
        // wsyn: allow(no-panic)
        Err(_) => panic!("narrow_i32: {x} exceeds an i32 exponent field"),
    }
}

/// FxHash-style multiply-xor hash of a packed state key. Not
/// collision-resistant against adversaries — DP states are not
/// attacker-controlled — but fast and well-mixed for the dense,
/// low-entropy keys the solvers produce.
#[inline]
#[must_use]
pub fn hash_state(key: u128) -> u64 {
    const M1: u64 = 0x9e37_79b9_7f4a_7c15; // 2^64 / φ
    const M2: u64 = 0xc2b2_ae3d_27d4_eb4f; // xxHash64 prime 2
    let lo = key as u64;
    let hi = (key >> 64) as u64;
    // Two independent multiplies (they pipeline) and one fold keep the
    // latency before the table index is known short — the hash sits on
    // the critical path in front of every memo cache miss.
    let h = lo.wrapping_mul(M1) ^ hi.wrapping_mul(M2);
    h ^ (h >> 32)
}

/// An open-addressing (linear-probe) memo table keyed on a packed `u128`
/// DP state. Insert-only *between clears* — the DPs never remove
/// individual entries, but a workspace-owned table may be [`Self::clear`]ed
/// wholesale and refilled for the next run while keeping its allocation.
///
/// Keys and values live in parallel arrays so the probe walk streams a
/// dense `u128` key array (four keys per cache line) instead of fat
/// key+value slots; values are only touched on a hit. An all-ones key is
/// the empty-slot sentinel — no packed DP state reaches it (it would
/// need an all-ones node id, budget, *and* error bit pattern at once),
/// and `insert` rejects it.
///
/// Table pressure for [`DpStats`] is not counted in the hot path (a
/// per-lookup counter costs ~10% on memo-bound DPs); [`Self::probes`]
/// instead derives the total probe displacement of the resident entries
/// on demand, which insert-only linear probing makes exact.
pub struct StateTable<V> {
    keys: Vec<u128>,
    vals: Vec<Option<V>>,
    len: usize,
}

/// Empty-slot marker in the key array (see [`StateTable`] docs).
const EMPTY_KEY: u128 = u128::MAX;

impl<V> Default for StateTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> StateTable<V> {
    const MIN_CAPACITY: usize = 16;

    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty table pre-sized for about `n` entries.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        let cap = (n * 10 / 7 + 1).next_power_of_two().max(Self::MIN_CAPACITY);
        StateTable {
            keys: vec![EMPTY_KEY; cap],
            vals: (0..cap).map(|_| None).collect(),
            len: 0,
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total probe displacement of the resident entries: the number of
    /// slots between each entry's hashed home slot and where it actually
    /// lives. `0` means every entry sits at its home slot — every lookup
    /// lands directly. Derived on demand in one pass over the table
    /// (insert-only linear probing keeps displacement exact), so the
    /// hot lookup path carries no counter.
    #[must_use]
    pub fn probes(&self) -> usize {
        let mask = self.keys.len() - 1;
        self.keys
            .iter()
            .enumerate()
            .filter(|(_, &k)| k != EMPTY_KEY)
            .map(|(i, &k)| i.wrapping_sub(hash_state(k) as usize) & mask)
            .sum()
    }

    /// Index of the slot holding `key` (`true`), or of the empty slot
    /// where it would be inserted (`false`). A single pass over the key
    /// array — callers never re-compare the key. Indexing is written as
    /// `keys[i & mask]` with `mask == keys.len() - 1` so the bounds
    /// check compiles away. The loop carries no probe counter — table
    /// pressure is derived after the fact by [`Self::probes`].
    #[inline]
    fn probe(&self, key: u128) -> (usize, bool) {
        let keys = self.keys.as_slice();
        let mask = keys.len() - 1;
        let mut i = hash_state(key) as usize;
        let found = loop {
            let k = keys[i & mask];
            if k == key {
                break true;
            }
            if k == EMPTY_KEY {
                break false;
            }
            i += 1;
        };
        (i & mask, found)
    }

    /// Looks up a state.
    #[inline]
    #[must_use]
    pub fn get(&self, key: u128) -> Option<&V> {
        match self.probe(key) {
            (i, true) => self.vals[i].as_ref(),
            (_, false) => None,
        }
    }

    /// Inserts a state, returning the previous value if the state was
    /// already present.
    ///
    /// # Panics
    /// Panics on the all-ones key, which is reserved as the empty-slot
    /// sentinel (no packed DP state produces it).
    pub fn insert(&mut self, key: u128, value: V) -> Option<V> {
        assert_ne!(key, EMPTY_KEY, "all-ones key is the empty-slot sentinel");
        if (self.len + 1) * 10 >= self.keys.len() * 7 {
            self.grow();
        }
        match self.probe(key) {
            (i, true) => self.vals[i].replace(value),
            (i, false) => {
                self.keys[i] = key;
                self.vals[i] = Some(value);
                self.len += 1;
                None
            }
        }
    }

    fn grow(&mut self) {
        // Grow 4× per rehash: DP memos routinely reach millions of
        // states, and halving the number of full-table reinsert passes
        // matters more than the transiently lower load factor.
        let new_cap = (self.keys.len() * 4).max(Self::MIN_CAPACITY);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY_KEY; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, (0..new_cap).map(|_| None).collect());
        let mask = new_cap - 1;
        for (key, val) in old_keys.into_iter().zip(old_vals) {
            if key == EMPTY_KEY {
                continue;
            }
            let mut i = (hash_state(key) as usize) & mask;
            while self.keys[i] != EMPTY_KEY {
                i = (i + 1) & mask;
            }
            self.keys[i] = key;
            self.vals[i] = val;
        }
    }

    /// Removes every entry while retaining the table's capacity.
    ///
    /// This is the reuse half of the workspace lifecycle: a cleared
    /// table starts the next solve with zero entries but no fresh
    /// allocation or rehash ramp-up. Between clears the table stays
    /// insert-only, so the probe-displacement derivation in
    /// [`Self::probes`] remains exact.
    pub fn clear(&mut self) {
        if self.len == 0 {
            return;
        }
        self.keys.fill(EMPTY_KEY);
        self.vals.fill_with(|| None);
        self.len = 0;
    }

    /// Iterates over `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u128, &V)> {
        self.keys
            .iter()
            .zip(&self.vals)
            .filter(|&(&k, _)| k != EMPTY_KEY)
            .filter_map(|(&k, v)| v.as_ref().map(|v| (k, v)))
    }
}

/// A `Copy` handle to a row allocated in a [`RowArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowId(u32);

/// Arena storage for DP rows: each row is a value slice and a parallel
/// choice slice (`values[b]` = optimal objective with budget `b`,
/// `choices[b]` = the decision achieving it). Replaces per-row
/// `Rc<NodeRow>` clones — rows live as long as the solve, and handles
/// are `Copy`.
pub struct RowArena<V> {
    values: Vec<V>,
    choices: Vec<u32>,
    rows: Vec<(u32, u32)>, // (offset, len)
}

impl<V> Default for RowArena<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> RowArena<V> {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        RowArena {
            values: Vec::new(),
            choices: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Allocates a row from parallel value/choice vectors.
    ///
    /// # Panics
    /// Panics when the vectors' lengths differ or the arena is full
    /// (more than `u32::MAX` rows or elements).
    pub fn alloc(&mut self, values: Vec<V>, choices: Vec<u32>) -> RowId {
        assert_eq!(values.len(), choices.len(), "row slices must be parallel");
        let offset = narrow_u32(self.values.len());
        let len = narrow_u32(values.len());
        let id = narrow_u32(self.rows.len());
        self.values.extend(values);
        self.choices.extend(choices);
        self.rows.push((offset, len));
        RowId(id)
    }

    /// The value slice of a row.
    #[must_use]
    pub fn values(&self, id: RowId) -> &[V] {
        let (off, len) = self.rows[id.0 as usize];
        &self.values[off as usize..(off + len) as usize]
    }

    /// The choice slice of a row.
    #[must_use]
    pub fn choices(&self, id: RowId) -> &[u32] {
        let (off, len) = self.rows[id.0 as usize];
        &self.choices[off as usize..(off + len) as usize]
    }

    /// Number of rows allocated.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Total elements stored across all rows.
    #[must_use]
    pub fn elements(&self) -> usize {
        self.values.len()
    }

    /// Drops every row while retaining the arena's capacity, so the
    /// next solve reuses the same allocations. Outstanding [`RowId`]s
    /// from before the clear are invalidated (they would index into
    /// rows that no longer exist); the workspace lifecycle guarantees
    /// no handle outlives the clear.
    pub fn clear(&mut self) {
        self.values.clear();
        self.choices.clear();
        self.rows.clear();
    }
}

/// A reusable bundle of DP storage — one [`StateTable`] memo and one
/// [`RowArena`] — that a solver threads through *repeated* runs instead
/// of allocating fresh per call.
///
/// Two reuse regimes, both driven by the caller:
///
/// * **Warm memo** (no `clear` between runs): when consecutive runs
///   solve the same instance at different budgets, the memo entries are
///   shared verbatim — DP states are keyed `(node, budget, error)`, so
///   a run at budget `B-1` hits every state a budget-`B` run already
///   materialized. The owning solver is responsible for validating that
///   the instance (coefficients, metric, split policy) is unchanged.
/// * **Allocation reuse** (`clear` between runs): when the instance
///   *does* change (τ-sweep rounding, streaming rebuild), `clear`
///   empties both structures but keeps their capacity, skipping the
///   rehash/growth ramp of a cold start.
///
/// The workspace also owns the `peak_live` statistic across its whole
/// lifetime: once `clear` exists, "final memo size" is no longer "peak
/// resident entries", so the peak is recorded here at clear time and
/// combined with current occupancy on read.
pub struct DpWorkspace<V, R = f64> {
    table: StateTable<V>,
    arena: RowArena<R>,
    peak_live: usize,
    clears: usize,
}

impl<V, R> Default for DpWorkspace<V, R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V, R> DpWorkspace<V, R> {
    /// An empty workspace.
    #[must_use]
    pub fn new() -> Self {
        DpWorkspace {
            table: StateTable::new(),
            arena: RowArena::new(),
            peak_live: 0,
            clears: 0,
        }
    }

    /// The memo table.
    #[must_use]
    pub fn table(&self) -> &StateTable<V> {
        &self.table
    }

    /// The memo table, mutably.
    pub fn table_mut(&mut self) -> &mut StateTable<V> {
        &mut self.table
    }

    /// The row arena.
    #[must_use]
    pub fn arena(&self) -> &RowArena<R> {
        &self.arena
    }

    /// The row arena, mutably.
    pub fn arena_mut(&mut self) -> &mut RowArena<R> {
        &mut self.arena
    }

    /// Both halves mutably at once — for solvers that borrow the memo
    /// and the arena simultaneously.
    pub fn split_mut(&mut self) -> (&mut StateTable<V>, &mut RowArena<R>) {
        (&mut self.table, &mut self.arena)
    }

    /// Empties the memo and the arena while retaining their capacity,
    /// first folding the current occupancy into the lifetime peak.
    pub fn clear(&mut self) {
        self.peak_live = self
            .peak_live
            .max(self.table.len())
            .max(self.arena.elements());
        self.table.clear();
        self.arena.clear();
        self.clears += 1;
    }

    /// Peak number of live entries (memo entries or arena elements,
    /// whichever is larger) over the workspace's whole lifetime,
    /// including the current occupancy. This is the value solvers
    /// should report as [`DpStats::peak_live`] for reused workspaces —
    /// the per-run memo length understates the true high-water mark
    /// once `clear` has run.
    #[must_use]
    pub fn peak_live(&self) -> usize {
        self.peak_live
            .max(self.table.len())
            .max(self.arena.elements())
    }

    /// How many times [`Self::clear`] has run.
    #[must_use]
    pub fn clears(&self) -> usize {
        self.clears
    }
}

/// Number of hardware threads the host exposes, with a deterministic
/// fallback of `1` when the query fails. This is the *host* half of the
/// thread-count policy; call sites should not consult it directly but
/// go through [`pool::configured_threads`] / [`Pool`], which layer the
/// `WSYN_POOL_THREADS` override and the min-work floor on top so every
/// layer agrees (single-core hosts skip thread-spawn overhead entirely
/// — the measured parallel path there is a slowdown, BENCH_dp_core.json:
/// 0.99×).
#[must_use]
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dp_stats_json_roundtrip() {
        let s = DpStats {
            states: 12,
            leaf_evals: 345,
            probes: 6,
            peak_live: 78,
        };
        let v = s.to_json();
        assert_eq!(DpStats::from_json(&v).unwrap(), s);
        // Survives a serialize → parse cycle (as persisted on disk).
        let reparsed = json::Value::parse(&v.pretty()).unwrap();
        assert_eq!(DpStats::from_json(&reparsed).unwrap(), s);
        // Missing fields are named.
        let err = DpStats::from_json(&json::object(vec![("states", json::Value::Number(1.0))]))
            .unwrap_err();
        assert!(err.contains("leaf_evals"), "{err}");
    }

    #[test]
    fn table_roundtrips_and_counts() {
        let mut t: StateTable<u64> = StateTable::new();
        for i in 0..10_000u64 {
            let key = pack_state_1d(i as u32, (i % 64) as u32, i.wrapping_mul(0x5851_f42d));
            assert!(t.insert(key, i).is_none());
        }
        assert_eq!(t.len(), 10_000);
        for i in 0..10_000u64 {
            let key = pack_state_1d(i as u32, (i % 64) as u32, i.wrapping_mul(0x5851_f42d));
            assert_eq!(t.get(key), Some(&i));
        }
        assert_eq!(t.get(pack_state_1d(99_999, 0, 0)), None);
        // 10k keys in a ≤16k-slot table must displace somewhere.
        assert!(t.probes() > 0, "probe-displacement accounting broken");
    }

    #[test]
    fn insert_replaces() {
        let mut t: StateTable<&str> = StateTable::new();
        assert_eq!(t.insert(7, "a"), None);
        assert_eq!(t.insert(7, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(7), Some(&"b"));
    }

    #[test]
    fn table_survives_growth_with_clustered_keys() {
        // Sequential keys stress linear probing across several growths.
        let mut t: StateTable<usize> = StateTable::with_capacity(4);
        for i in 0..5_000usize {
            t.insert(i as u128, i);
        }
        for i in 0..5_000usize {
            assert_eq!(t.get(i as u128), Some(&i));
        }
    }

    #[test]
    fn arena_rows_are_stable() {
        let mut a: RowArena<f64> = RowArena::new();
        let r1 = a.alloc(vec![1.0, 2.0], vec![0, 1]);
        let r2 = a.alloc(vec![3.0], vec![9]);
        let r3 = a.alloc(vec![], vec![]);
        assert_eq!(a.values(r1), &[1.0, 2.0]);
        assert_eq!(a.choices(r1), &[0, 1]);
        assert_eq!(a.values(r2), &[3.0]);
        assert_eq!(a.choices(r2), &[9]);
        assert_eq!(a.values(r3), &[] as &[f64]);
        assert_eq!(a.rows(), 3);
        assert_eq!(a.elements(), 3);
    }

    #[test]
    fn table_clear_retains_capacity_and_resets_contents() {
        let mut t: StateTable<u64> = StateTable::new();
        for i in 0..1_000u64 {
            t.insert(pack_state_1d(i as u32, 0, i), i);
        }
        let cap = t.keys.len();
        t.clear();
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.keys.len(), cap, "clear must keep capacity");
        assert_eq!(t.probes(), 0);
        for i in 0..1_000u64 {
            assert_eq!(t.get(pack_state_1d(i as u32, 0, i)), None);
        }
        // Refill after clear behaves like a fresh table.
        for i in 0..1_000u64 {
            assert!(t.insert(pack_state_1d(i as u32, 1, i), i * 2).is_none());
        }
        assert_eq!(t.len(), 1_000);
        assert_eq!(t.get(pack_state_1d(17, 1, 17)), Some(&34));
    }

    #[test]
    fn arena_clear_retains_capacity() {
        let mut a: RowArena<f64> = RowArena::new();
        a.alloc(vec![1.0, 2.0, 3.0], vec![0, 1, 2]);
        let cap = a.values.capacity();
        a.clear();
        assert_eq!(a.rows(), 0);
        assert_eq!(a.elements(), 0);
        assert!(a.values.capacity() >= cap.min(3));
        let r = a.alloc(vec![9.0], vec![4]);
        assert_eq!(a.values(r), &[9.0]);
    }

    #[test]
    fn workspace_tracks_lifetime_peak_across_clears() {
        let mut ws: DpWorkspace<u64> = DpWorkspace::new();
        assert_eq!(ws.peak_live(), 0);
        assert_eq!(ws.clears(), 0);
        for i in 0..100u64 {
            ws.table_mut().insert(i.into(), i);
        }
        assert_eq!(ws.peak_live(), 100);
        ws.clear();
        assert_eq!(ws.table().len(), 0);
        assert_eq!(ws.clears(), 1);
        // Peak survives the clear even though the table is empty now.
        assert_eq!(ws.peak_live(), 100);
        for i in 0..40u64 {
            ws.table_mut().insert(i.into(), i);
        }
        // Smaller refill does not move the peak...
        assert_eq!(ws.peak_live(), 100);
        ws.arena_mut().alloc(vec![0.0; 150], vec![0; 150]);
        // ...but a larger live set (arena elements count too) does,
        // without needing a clear to record it.
        assert_eq!(ws.peak_live(), 150);
        let (table, arena) = ws.split_mut();
        table.insert(1 << 64, 7);
        arena.alloc(vec![1.0], vec![1]);
        assert_eq!(ws.table().len(), 41);
        assert_eq!(ws.arena().elements(), 151);
    }

    #[test]
    fn host_parallelism_is_at_least_one() {
        // Direct probe of the policy primitive itself; everything else
        // must go through Pool. wsyn: allow(thread-policy)
        assert!(host_parallelism() >= 1);
    }

    #[test]
    fn stats_merge() {
        let a = DpStats {
            states: 1,
            leaf_evals: 2,
            probes: 3,
            peak_live: 10,
        };
        let b = DpStats {
            states: 4,
            leaf_evals: 5,
            probes: 6,
            peak_live: 7,
        };
        let m = a.merged(b);
        assert_eq!(
            m,
            DpStats {
                states: 5,
                leaf_evals: 7,
                probes: 9,
                peak_live: 10
            }
        );
    }

    #[test]
    fn packing_is_injective_on_components() {
        let a = pack_state_1d(1, 2, 3);
        let b = pack_state_1d(2, 1, 3);
        let c = pack_state_1d(1, 2, 4);
        assert!(a != b && a != c && b != c);
        assert_ne!(pack_state_nd(1, 2), pack_state_nd(2, 1));
    }
}

#[cfg(test)]
mod proptests {
    use std::collections::BTreeMap;

    use proptest::prelude::*;

    use super::StateTable;

    /// Packed keys, biased towards a small space so runs exercise
    /// overwrites and probe clusters, not just fresh inserts. The
    /// all-ones sentinel is remapped to zero (`insert` rejects it by
    /// contract, so it can never be a real DP state).
    fn key_strategy() -> impl Strategy<Value = u128> {
        (any::<u64>(), any::<u64>(), any::<bool>()).prop_map(|(hi, lo, small)| {
            let k = if small {
                u128::from(lo % 97)
            } else {
                (u128::from(hi) << 64) | u128::from(lo)
            };
            if k == u128::MAX {
                0
            } else {
                k
            }
        })
    }

    /// An operation against the table: insert, lookup, or a wholesale
    /// clear (the workspace-reuse lifecycle).
    #[derive(Debug, Clone, Copy)]
    enum Op {
        Insert(u128, u64),
        Get(u128),
        Clear,
    }

    /// Insert/lookup arms are repeated so `Clear` stays rare (the
    /// vendored `prop_oneof` has no weight syntax): long insert runs
    /// are needed to cross growth boundaries between clears.
    fn op_strategy() -> impl Strategy<Value = Op> {
        let insert = || (key_strategy(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v));
        let get = || key_strategy().prop_map(Op::Get);
        prop_oneof![
            insert(),
            insert(),
            insert(),
            insert(),
            get(),
            get(),
            get(),
            Just(Op::Clear),
        ]
    }

    proptest! {
        /// The open-addressing table is observationally equivalent to a
        /// `BTreeMap` reference model under any interleaving of inserts,
        /// lookups, and clears, across growth/rehash boundaries (tiny
        /// initial capacity forces several), and its final iteration
        /// contents match the model exactly.
        #[test]
        fn state_table_matches_btreemap_model(
            ops in proptest::collection::vec(op_strategy(), 0..400),
        ) {
            let mut table: StateTable<u64> = StateTable::with_capacity(2);
            let mut model: BTreeMap<u128, u64> = BTreeMap::new();
            for &op in &ops {
                match op {
                    Op::Insert(key, value) => {
                        prop_assert_eq!(table.insert(key, value), model.insert(key, value));
                    }
                    Op::Get(key) => prop_assert_eq!(table.get(key), model.get(&key)),
                    Op::Clear => {
                        table.clear();
                        model.clear();
                    }
                }
                prop_assert_eq!(table.len(), model.len());
                prop_assert_eq!(table.is_empty(), model.is_empty());
            }
            let mut got: Vec<(u128, u64)> = table.iter().map(|(k, v)| (k, *v)).collect();
            got.sort_unstable();
            let want: Vec<(u128, u64)> = model.into_iter().collect();
            prop_assert_eq!(got, want);
        }
    }
}
