//! A small dependency-free JSON reader/writer.
//!
//! The workspace persists synopses (CLI `build`/`eval`/`query`) and
//! benchmark artifacts as JSON. The build environment has no registry
//! access and the dependency policy (DESIGN.md §6) keeps the core free of
//! external crates, so serialization is hand-rolled here instead of via
//! serde. The writer is wire-compatible with the previous serde output
//! (objects, arrays, `null` for absent options, numbers without
//! unnecessary fraction digits); the parser accepts standard JSON.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Number(x)
                if *x >= 0.0 && crate::is_zero(x.fract()) && *x <= f64::from(u32::MAX) * 4096.0 =>
            {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    /// Returns a human-readable message on malformed input.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Serializes with two-space indentation (the layout the CLI's
    /// previous serde-based writer produced).
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Serializes compactly (no whitespace).
    #[must_use]
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(x) => write_number(out, *x),
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no Inf/NaN; null is the conventional degradation.
        out.push_str("null");
    } else if crate::is_zero(x.fract()) && x.abs() < 1e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        // Shortest roundtrip representation.
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed for this
                            // workspace's documents; map lone surrogates
                            // to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let ch = s.chars().next().ok_or("unexpected end of input")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        token
            .parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number '{token}' at byte {start}"))
    }
}

/// Convenience: an object builder preserving field order.
#[must_use]
pub fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_cli_wire_format() {
        let doc = r#"{"algorithm":"minmax","metric":"abs","objective":1.0,"synopsis":{"n":8,"entries":[[99,5.0]]}}"#;
        let v = Value::parse(doc).unwrap();
        assert_eq!(v.get("algorithm").unwrap().as_str(), Some("minmax"));
        assert_eq!(v.get("objective").unwrap().as_f64(), Some(1.0));
        let syn = v.get("synopsis").unwrap();
        assert_eq!(syn.get("n").unwrap().as_usize(), Some(8));
        let entries = syn.get("entries").unwrap().as_array().unwrap();
        let pair = entries[0].as_array().unwrap();
        assert_eq!(pair[0].as_usize(), Some(99));
        assert_eq!(pair[1].as_f64(), Some(5.0));
    }

    #[test]
    fn roundtrips_pretty_and_compact() {
        let v = object(vec![
            ("name", Value::String("a \"quoted\" str\n".to_string())),
            ("none", Value::Null),
            ("flag", Value::Bool(true)),
            (
                "nums",
                Value::Array(vec![
                    Value::Number(1.5),
                    Value::Number(-3.0),
                    Value::Number(0.1),
                ]),
            ),
            ("empty", Value::Array(vec![])),
        ]);
        for text in [v.pretty(), v.compact()] {
            assert_eq!(Value::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn number_formatting_is_minimal_and_roundtrips() {
        let mut s = String::new();
        write_number(&mut s, 5.0);
        assert_eq!(s, "5");
        s.clear();
        write_number(&mut s, 0.1);
        assert_eq!(s.parse::<f64>().unwrap(), 0.1);
        s.clear();
        write_number(&mut s, 1e300);
        assert_eq!(s.parse::<f64>().unwrap(), 1e300);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "nul", "1 2", "{\"a\":}"] {
            assert!(Value::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn whitespace_tolerant() {
        let v = Value::parse(" {\n \"a\" : [ 1 , 2 ] ,\n\"b\": null }\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert!(v.get("b").unwrap().is_null());
    }
}
