//! The workspace-wide typed error.
//!
//! Every dispatch surface above the solvers — the [`Thresholder`] trait,
//! the CLI, the AQP builders, the conformance harness plumbing — used to
//! return `Result<_, String>`. [`WsynError`] replaces that: a small
//! closed set of failure categories callers can match on, each carrying
//! the human-readable detail the old strings held.
//!
//! The crate is dependency-free by policy (DESIGN.md §6), so variants
//! carry rendered text rather than foreign error types; the
//! `From<HaarError>` conversion lives in `wsyn-haar` (the crate that
//! owns the type) and maps into [`WsynError::Transform`].
//!
//! [`Thresholder`]: https://docs.rs/wsyn-synopsis

use std::fmt;

/// A failure anywhere in the wavelet-synopsis workspace.
///
/// Marked `#[non_exhaustive]`: new failure categories may be added
/// without a breaking release, so downstream `match`es need a wildcard
/// arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WsynError {
    /// A solver was asked for a `(budget, metric)` combination it is not
    /// defined for (e.g. the `(1+ε)` scheme under a relative metric).
    Unsupported {
        /// Stable solver identifier (`Thresholder::name`).
        solver: String,
        /// Why the combination is refused.
        reason: String,
    },
    /// A consumer needed a synopsis of the other dimensionality (e.g. a
    /// 1-D query engine handed a multi-dimensional synopsis).
    DimensionMismatch {
        /// The consumer that refused the synopsis.
        what: String,
    },
    /// Wavelet transform or error-tree construction failed; carries the
    /// rendered `HaarError` (see the `From<HaarError>` impl in
    /// `wsyn-haar`).
    Transform(String),
    /// Malformed input: CLI arguments, JSON documents, corpus files.
    Invalid(String),
    /// Filesystem I/O failed.
    Io {
        /// The path involved.
        path: String,
        /// The rendered OS error.
        message: String,
    },
}

impl WsynError {
    /// An [`WsynError::Unsupported`] refusal from `solver`.
    #[must_use]
    pub fn unsupported(solver: impl Into<String>, reason: impl Into<String>) -> WsynError {
        WsynError::Unsupported {
            solver: solver.into(),
            reason: reason.into(),
        }
    }

    /// A [`WsynError::DimensionMismatch`] naming the refusing consumer.
    #[must_use]
    pub fn dimension_mismatch(what: impl Into<String>) -> WsynError {
        WsynError::DimensionMismatch { what: what.into() }
    }

    /// A [`WsynError::Invalid`] with the given detail.
    #[must_use]
    pub fn invalid(detail: impl Into<String>) -> WsynError {
        WsynError::Invalid(detail.into())
    }

    /// A [`WsynError::Io`] for `path`.
    #[must_use]
    pub fn io(path: impl Into<String>, message: impl Into<String>) -> WsynError {
        WsynError::Io {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for WsynError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WsynError::Unsupported { solver, reason } => write!(f, "{solver}: {reason}"),
            WsynError::DimensionMismatch { what } => {
                write!(f, "{what} requires a one-dimensional synopsis")
            }
            WsynError::Transform(detail) => write!(f, "wavelet transform: {detail}"),
            WsynError::Invalid(detail) => write!(f, "{detail}"),
            WsynError::Io { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl std::error::Error for WsynError {}

/// Migration aid for surfaces that still produce `String` errors (CLI
/// argument parsing, JSON decoding): the text becomes
/// [`WsynError::Invalid`], so `?` keeps working across the boundary.
impl From<String> for WsynError {
    fn from(detail: String) -> WsynError {
        WsynError::Invalid(detail)
    }
}

impl From<&str> for WsynError {
    fn from(detail: &str) -> WsynError {
        WsynError::Invalid(detail.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            WsynError::unsupported("oneplus", "absolute-error only").to_string(),
            "oneplus: absolute-error only"
        );
        assert_eq!(
            WsynError::dimension_mismatch("the CLI").to_string(),
            "the CLI requires a one-dimensional synopsis"
        );
        assert_eq!(
            WsynError::Transform("input is empty".to_string()).to_string(),
            "wavelet transform: input is empty"
        );
        assert_eq!(WsynError::invalid("bad flag").to_string(), "bad flag");
        assert_eq!(
            WsynError::io("corpus/x.json", "not found").to_string(),
            "corpus/x.json: not found"
        );
    }

    #[test]
    fn string_conversion_feeds_invalid() {
        let e: WsynError = format!("bad --seed `{}`", "x").into();
        assert_eq!(e, WsynError::Invalid("bad --seed `x`".to_string()));
        let e: WsynError = "plain".into();
        assert_eq!(e.to_string(), "plain");
    }

    #[test]
    fn is_std_error() {
        fn takes(_: &dyn std::error::Error) {}
        takes(&WsynError::invalid("x"));
    }
}
