//! # Deterministic chunk-queue thread pool
//!
//! Every parallel path in the workspace routes through this module, so
//! thread-count policy lives in exactly one place and — more importantly
//! — so parallel execution can never leak into results or reports. The
//! contract is the one the conformance harness enforces end-to-end:
//!
//! > For any `items` and any pure `f`, `Pool::map_indexed(items, f)`
//! > returns exactly `items.into_iter().enumerate().map(f).collect()`,
//! > for every thread count, on every run.
//!
//! The mechanism is the PR-5 span-merge technique generalized: workers
//! pull `(index, item)` chunks from a shared queue (a chunk queue is
//! self-balancing — an idle worker "steals" the next chunk the moment it
//! finishes, which is the work-stealing behaviour we need without
//! per-worker deques), produce `(index, result)` pairs in whatever order
//! the scheduler dictates, and the merge step sorts by index. Execution
//! order affects only *when* a result is produced, never *where* it
//! lands. Observability survives the same way: callers put their
//! [`SpanNode`](https://docs.rs/wsyn-obs) subtrees *inside* the result
//! values and attach them after the merge, in input order, so a parallel
//! run renders the byte-identical report of the sequential run.
//!
//! Design constraints that shaped the implementation:
//!
//! * `wsyn-core` is dependency-free and `#![forbid(unsafe_code)]`, so
//!   there is no persistent pool of workers executing borrowed closures
//!   (that requires `unsafe` lifetime erasure, as `rayon` does).
//!   Instead each `map_indexed` call opens a [`std::thread::scope`];
//!   the min-work floor in [`Pool::threads_for`] keeps the spawn cost
//!   off every small instance, and the items parallelized here (whole
//!   DP solves, subtree shards, benchmark rows) dwarf a thread spawn.
//! * One `Mutex` guards the queue *and* the result pile; a `Condvar`
//!   signals completion so the calling thread — which participates as
//!   worker 0 — can begin merging as soon as the last result lands,
//!   before the helper threads are torn down.
//! * Worker panics must not deadlock the completion wait: a drop guard
//!   flips an `aborted` flag during unwind and wakes the caller, and
//!   the scope join then propagates the panic.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Minimum queue items per worker thread before a second thread is
/// worth spawning. Everything routed through the pool is coarse (a
/// whole DP solve, a subtree shard, a benchmark row), so the floor is
/// low; its job is to keep one- and two-item calls on the caller's
/// thread where they pay zero spawn or locking overhead.
pub const MIN_ITEMS_PER_THREAD: usize = 2;

/// Environment variable overriding the pool's thread count.
///
/// `WSYN_POOL_THREADS=1` forces fully sequential execution (CI uses
/// this to diff parallel-vs-sequential reports); any positive integer
/// caps the pool at that many threads. Unset, empty, or unparsable
/// values fall back to [`crate::host_parallelism`].
pub const THREADS_ENV: &str = "WSYN_POOL_THREADS";

/// Thread count from an override string, else the host's.
///
/// Factored out of [`configured_threads`] so the precedence rule
/// (override wins only when it parses to a positive integer) is a pure,
/// testable function.
#[must_use]
pub fn threads_from(var: Option<&str>, host: usize) -> usize {
    match var.map(|v| v.trim().parse::<usize>()) {
        Some(Ok(n)) if n >= 1 => n,
        _ => host.max(1),
    }
}

/// The process-wide thread-count policy: [`THREADS_ENV`] if set to a
/// positive integer, else [`crate::host_parallelism`].
///
/// Consulted by [`Pool::new`]; call sites should hold a [`Pool`] rather
/// than re-deriving counts from `host_parallelism()` so every layer
/// agrees on one policy.
#[must_use]
pub fn configured_threads() -> usize {
    let var = std::env::var(THREADS_ENV).ok();
    threads_from(var.as_deref(), crate::host_parallelism())
}

/// Deterministic map-over-items executor. See the module docs for the
/// determinism argument.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Pool {
        Pool::new()
    }
}

/// Shared worker state: the chunk queue, the unordered result pile, and
/// the completion/abort bookkeeping. One lock guards all of it — items
/// are coarse, so the lock is touched twice per item.
struct State<T, R> {
    queue: VecDeque<(usize, T)>,
    results: Vec<(usize, R)>,
    pending: usize,
    aborted: bool,
}

fn lock<'a, T, R>(m: &'a Mutex<State<T, R>>) -> MutexGuard<'a, State<T, R>> {
    // A poisoned lock means a worker panicked; the state itself is a
    // queue of untouched items plus completed results, both still
    // coherent, and the scope join will re-raise the panic.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Flips `aborted` and wakes the completion waiter if a worker unwinds
/// mid-item, so the caller stops waiting and the scope join can
/// propagate the panic instead of deadlocking.
struct AbortOnPanic<'a, T, R> {
    state: &'a Mutex<State<T, R>>,
    done: &'a Condvar,
    armed: bool,
}

impl<T, R> Drop for AbortOnPanic<'_, T, R> {
    fn drop(&mut self) {
        if self.armed {
            lock(self.state).aborted = true;
            self.done.notify_all();
        }
    }
}

impl Pool {
    /// A pool sized by the process-wide policy
    /// ([`configured_threads`]).
    #[must_use]
    pub fn new() -> Pool {
        Pool::with_threads(configured_threads())
    }

    /// A pool with an explicit thread count, ignoring the environment.
    ///
    /// This is how the determinism proptests run the same solve at
    /// threads ∈ {1, 2, 4} inside one process; zero is clamped to one.
    #[must_use]
    pub fn with_threads(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The configured thread ceiling (≥ 1).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// How many threads a call with `items` queue entries will actually
    /// use: the configured ceiling, lowered so each thread has at least
    /// [`MIN_ITEMS_PER_THREAD`] items, and never below one.
    #[must_use]
    pub fn threads_for(&self, items: usize) -> usize {
        self.threads.min(items / MIN_ITEMS_PER_THREAD).max(1)
    }

    /// Whether a call with `items` queue entries runs on more than one
    /// thread — the single predicate behind every printed "mode" line.
    #[must_use]
    pub fn is_parallel_for(&self, items: usize) -> bool {
        self.threads_for(items) > 1
    }

    /// Maps `f` over `items`, returning results in input order
    /// regardless of execution order.
    ///
    /// Equivalent to
    /// `items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect()`
    /// for pure `f` — bit-for-bit, at every thread count. With one
    /// effective thread (small `items`, `WSYN_POOL_THREADS=1`, or a
    /// 1-CPU host) that sequential loop is exactly what runs: no
    /// threads, no locks.
    ///
    /// # Panics
    /// Re-raises a panic from `f` after all workers stop.
    pub fn map_indexed<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads_for(n);
        if workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, x)| f(i, x))
                .collect();
        }

        let state = Mutex::new(State {
            queue: items.into_iter().enumerate().collect(),
            results: Vec::with_capacity(n),
            pending: n,
            aborted: false,
        });
        let done = Condvar::new();

        let work = || {
            let mut guard = AbortOnPanic {
                state: &state,
                done: &done,
                armed: true,
            };
            loop {
                let item = lock(&state).queue.pop_front();
                let Some((i, x)) = item else { break };
                let r = f(i, x);
                let mut s = lock(&state);
                s.results.push((i, r));
                s.pending -= 1;
                if s.pending == 0 {
                    done.notify_all();
                }
            }
            guard.armed = false;
        };

        let mut pairs = std::thread::scope(|scope| {
            for _ in 1..workers {
                scope.spawn(work);
            }
            // The caller is worker 0: it drains the queue alongside the
            // helpers, then waits for their in-flight items.
            work();
            let mut s = lock(&state);
            while s.pending > 0 && !s.aborted {
                s = done.wait(s).unwrap_or_else(PoisonError::into_inner);
            }
            std::mem::take(&mut s.results)
            // Scope exit joins the helpers and re-raises any panic, so
            // an aborted (partial) result pile never escapes.
        });

        pairs.sort_unstable_by_key(|&(i, _)| i);
        pairs.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_input_order() {
        for threads in [1, 2, 3, 4, 8] {
            let pool = Pool::with_threads(threads);
            let items: Vec<u64> = (0..97).collect();
            let out = pool.map_indexed(items, |i, x| (i as u64) * 1000 + x * x);
            let expected: Vec<u64> = (0..97).map(|x| x * 1000 + x * x).collect();
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn map_indexed_handles_empty_and_single() {
        let pool = Pool::with_threads(4);
        let out: Vec<u32> = pool.map_indexed(Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
        assert_eq!(pool.map_indexed(vec![7u32], |i, x| x + i as u32), vec![7]);
    }

    #[test]
    fn map_indexed_is_bit_identical_across_thread_counts() {
        // Float results: bit-compare, not approx-compare.
        let items: Vec<f64> = (0..64).map(|i| f64::from(i) * 0.37 - 9.5).collect();
        let f = |i: usize, x: f64| (x * 1.000_000_1 + i as f64).sin();
        let base: Vec<u64> = Pool::with_threads(1)
            .map_indexed(items.clone(), f)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        for threads in [2, 4] {
            let got: Vec<u64> = Pool::with_threads(threads)
                .map_indexed(items.clone(), f)
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(got, base, "threads = {threads}");
        }
    }

    #[test]
    fn threads_for_applies_min_work_floor() {
        let pool = Pool::with_threads(4);
        assert_eq!(pool.threads_for(0), 1);
        assert_eq!(pool.threads_for(1), 1);
        assert_eq!(pool.threads_for(2), 1);
        assert_eq!(pool.threads_for(4), 2);
        assert_eq!(pool.threads_for(7), 3);
        assert_eq!(pool.threads_for(8), 4);
        assert_eq!(pool.threads_for(1000), 4);
        assert!(!pool.is_parallel_for(2));
        assert!(pool.is_parallel_for(8));
    }

    #[test]
    fn with_threads_clamps_zero() {
        assert_eq!(Pool::with_threads(0).threads(), 1);
    }

    #[test]
    fn threads_from_precedence() {
        assert_eq!(threads_from(None, 8), 8);
        assert_eq!(threads_from(Some("3"), 8), 3);
        assert_eq!(threads_from(Some(" 2 "), 8), 2);
        assert_eq!(threads_from(Some("0"), 8), 8);
        assert_eq!(threads_from(Some("-1"), 8), 8);
        assert_eq!(threads_from(Some("lots"), 8), 8);
        assert_eq!(threads_from(Some(""), 8), 8);
        assert_eq!(threads_from(None, 0), 1);
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let result = std::panic::catch_unwind(|| {
            Pool::with_threads(4).map_indexed((0..16).collect::<Vec<u32>>(), |_, x| {
                assert!(x != 11, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn map_indexed_empty_input_at_every_thread_count() {
        // Empty input must return an empty Vec without spawning or
        // blocking at any ceiling, including the clamped-zero pool.
        for threads in [0, 1, 2, 4, 8] {
            let pool = Pool::with_threads(threads);
            let out: Vec<String> = pool.map_indexed(Vec::<u8>::new(), |i, x| format!("{i}:{x}"));
            assert!(out.is_empty(), "threads = {threads}");
        }
    }

    #[test]
    fn map_indexed_fewer_items_than_threads() {
        // Items below the ceiling: the min-work floor trims the worker
        // count (8 threads, 5 items -> 2 workers; 3 items -> sequential)
        // but the contract — results in input order, every item mapped
        // exactly once — is unchanged.
        let pool = Pool::with_threads(8);
        for n in 1usize..8 {
            let items: Vec<usize> = (0..n).collect();
            let out = pool.map_indexed(items, |i, x| {
                assert_eq!(i, x);
                i * 10 + x
            });
            let expected: Vec<usize> = (0..n).map(|x| x * 11).collect();
            assert_eq!(out, expected, "n = {n}");
        }
    }

    #[test]
    fn single_worker_panic_aborts_cleanly_with_payload() {
        // One task out of many panics: the completion wait must observe
        // the abort and the scope join must re-raise a panic — not hang
        // on the Condvar, not return a partial pile. The 60-second
        // watchdog distinguishes "clean abort" from "hang" without
        // racing the pool's own teardown. The payload is the original
        // message when worker 0 (the caller) drew the poisoned item, and
        // `std::thread::scope`'s "a scoped thread panicked" when a
        // helper did — which of the two is a scheduling race, so the
        // test accepts exactly those and nothing else.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let result = std::panic::catch_unwind(|| {
                Pool::with_threads(4).map_indexed((0..64).collect::<Vec<u32>>(), |_, x| {
                    assert!(x != 17, "deliberate failure on item 17");
                    x * 2
                })
            });
            let _ = tx.send(result);
        });
        let result = rx
            .recv_timeout(std::time::Duration::from_secs(60))
            .expect("map_indexed hung on the completion wait after a worker panic");
        let payload = result.expect_err("panic must propagate to the caller");
        let text = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("panic payload must be a string");
        assert!(
            text.contains("deliberate failure on item 17")
                || text.contains("a scoped thread panicked"),
            "unexpected panic payload: {text}"
        );
    }

    #[test]
    fn every_worker_panicking_still_aborts_cleanly() {
        // The pathological case: all in-flight items unwind, so every
        // worker's drop guard fires and the caller (worker 0, also
        // unwinding) never reaches the Condvar wait. The scope join must
        // still deliver a panic rather than deadlock.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let result = std::panic::catch_unwind(|| {
                Pool::with_threads(4).map_indexed((0..16).collect::<Vec<u32>>(), |_, _| -> u32 {
                    panic!("every task fails")
                })
            });
            let _ = tx.send(result.is_err());
        });
        let propagated = rx
            .recv_timeout(std::time::Duration::from_secs(60))
            .expect("map_indexed hung when every task panicked");
        assert!(propagated);
    }
}
