//! E16: synopsis-family race — the optimal wavelet (`minmax`) vs. the
//! optimal step-function histogram (`hist`) at identical budgets.
//!
//! Both families solve the *same* problem — minimize the maximum
//! (absolute or relative) error under a space budget — with provable
//! optima, so the race is a clean shape study: which data shapes favour
//! the Haar basis and which favour contiguous buckets. We run the three
//! race workloads (zipf / spike / plateau) under both metrics, report
//! each family's guaranteed objective and the `auto` winner (hist only
//! by strict improvement, ties to the wavelet — the server's rule), and
//! verify every guarantee against the realized reconstruction error.

use wsyn_bench::{f, md_table, timed};
use wsyn_datagen::{piecewise_constant, spikes, zipf, ZipfPlacement};
use wsyn_synopsis::family::{HIST, MINMAX};
use wsyn_synopsis::histogram::HistThresholder;
use wsyn_synopsis::one_dim::MinMaxErr;
use wsyn_synopsis::{AnySynopsis, ErrorMetric, Thresholder};

fn main() {
    let n = 1024usize;
    let budgets = [4usize, 8, 16, 32, 64];
    let workloads: Vec<(&str, Vec<f64>)> = vec![
        ("zipf", zipf(n, 1.0, 200_000.0, ZipfPlacement::Shuffled, 21)),
        ("spike", spikes(n, 6, (400.0, 900.0), (-5.0, 5.0), 22)),
        ("plateau", piecewise_constant(n, 8, (1.0, 600.0), 0.0, 23)),
    ];
    let metrics: [(&str, ErrorMetric); 2] = [
        ("abs", ErrorMetric::absolute()),
        ("rel:1", ErrorMetric::relative(1.0)),
    ];

    println!("## E16 — synopsis-family race at N = {n} (guaranteed L∞ optima)\n");

    for (metric_id, metric) in metrics {
        println!("### metric = {metric_id}\n");
        let mut rows = Vec::new();
        for (shape, data) in &workloads {
            let (wavelet, wavelet_ms) = timed(|| MinMaxErr::new(data).unwrap());
            let hist = HistThresholder::new(data);
            for &b in &budgets {
                let w = wavelet.run(b, metric);
                let h = hist.threshold(b, metric).unwrap();
                let AnySynopsis::Histogram(step) = &h.synopsis else {
                    panic!("hist must produce a histogram synopsis");
                };
                for (family, objective, recon) in [
                    (MINMAX, w.objective, w.synopsis.reconstruct()),
                    (HIST, h.objective, step.reconstruct()),
                ] {
                    let measured = metric.max_error(data, &recon);
                    assert!(
                        measured <= objective + 1e-9 * (1.0 + objective.abs()),
                        "{shape} {metric_id} b={b} {family}: realized {measured} above \
                         guarantee {objective}"
                    );
                }
                let winner = if h.objective < w.objective {
                    HIST
                } else {
                    MINMAX
                };
                let ratio = if w.objective > 0.0 {
                    format!("{:.3}", h.objective / w.objective)
                } else if h.objective == 0.0 {
                    "1.000".to_string()
                } else {
                    "inf".to_string()
                };
                rows.push(vec![
                    (*shape).to_string(),
                    b.to_string(),
                    f(w.objective),
                    f(h.objective),
                    ratio,
                    winner.to_string(),
                ]);
            }
            let _ = wavelet_ms;
        }
        md_table(
            &[
                "workload",
                "B",
                "wavelet OPT",
                "hist OPT",
                "hist/wavelet",
                "auto winner",
            ],
            &rows,
        );
        println!();
    }

    println!(
        "Shape summary: plateaus with at most B segments fit buckets exactly \
         (hist reaches 0); shuffled zipf has no dyadic alignment, so buckets \
         adapt where the fixed Haar grid cannot; even isolated spikes cost the \
         Haar basis ~log N coefficients each to pin exactly, so at budgets \
         below (spikes × log N) the histogram's 2-boundaries-per-spike price \
         is the cheaper one. The wavelet's edge appears on dyadic-aligned \
         structure and at budgets large enough to close coefficient chains — \
         and it alone extends to multi-dimensional domains (§3.2)."
    );
}
