//! E12: §2.3's classical fact — retaining the `B` largest *normalized*
//! coefficients is optimal for the root-mean-squared (L2) error.
//!
//! Verifies greedy-L2 against an exhaustive L2 oracle over many random
//! instances, and demonstrates the flip side motivating the paper: on the
//! same instances, greedy's *maximum relative error* can be far from the
//! deterministic optimum.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsyn_bench::{f, md_table};
use wsyn_haar::ErrorTree1d;
use wsyn_synopsis::greedy::greedy_l2_1d;
use wsyn_synopsis::one_dim::MinMaxErr;
use wsyn_synopsis::{oracle, rmse, ErrorMetric};

fn main() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut checks = 0usize;
    for _ in 0..60 {
        let n = 16usize;
        let data: Vec<f64> = (0..n)
            .map(|_| f64::from(rng.gen_range(-30i32..=30)))
            .collect();
        let tree = ErrorTree1d::from_data(&data).unwrap();
        for b in 0..=8usize {
            let greedy = greedy_l2_1d(&tree, b);
            let g = rmse(&data, &greedy.reconstruct());
            let opt = oracle::exhaustive_l2_1d(&tree, &data, b).objective;
            assert!(
                g <= opt + 1e-9,
                "greedy suboptimal for L2: b={b}, {g} vs {opt} (data {data:?})"
            );
            checks += 1;
        }
    }
    println!("## E12 — greedy normalized-magnitude retention is L2-optimal\n");
    println!("{checks} instance×budget checks against the exhaustive L2 oracle: 0 violations  ✓\n");

    // The flip side: L2-optimal can be maxRelErr-awful.
    println!("### …but L2-optimal is not max-relative-error-optimal\n");
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(5);
    for trial in 0..5 {
        // Mostly-small values with a few huge ones: greedy spends its
        // budget on the big coefficients and butchers the small region.
        let n = 64usize;
        let mut data: Vec<f64> = (0..n).map(|_| f64::from(rng.gen_range(1i32..=4))).collect();
        for _ in 0..6 {
            let i = rng.gen_range(0..n);
            data[i] = f64::from(rng.gen_range(500i32..=900));
        }
        let b = 8;
        let metric = ErrorMetric::relative(1.0);
        let tree = ErrorTree1d::from_data(&data).unwrap();
        let g = greedy_l2_1d(&tree, b).max_error(&data, metric);
        let det = MinMaxErr::new(&data).unwrap().run(b, metric).objective;
        rows.push(vec![
            trial.to_string(),
            f(det),
            f(g),
            format!("{:.1}x", g / det.max(1e-12)),
        ]);
    }
    md_table(
        &[
            "trial",
            "MinMaxErr max relErr",
            "greedy-L2 max relErr",
            "gap",
        ],
        &rows,
    );
}
