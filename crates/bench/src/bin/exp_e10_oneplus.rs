//! E10: Theorem 3.4 + Proposition 3.3 — the `(1+ε)` scheme for maximum
//! absolute error.
//!
//! Reports the measured approximation ratio vs. the exact optimum across
//! an ε sweep (always ≤ 1+ε, usually far better), the τ-sweep internals
//! (forced-retention counts, feasibility, per-τ objectives) for one
//! representative run, and the runtime trend in 1/ε.

use wsyn_bench::{f, md_table, timed};
use wsyn_datagen::{cube_bumps, quantize_to_i64};
use wsyn_haar::nd::NdShape;
use wsyn_synopsis::multi_dim::integer::IntegerExact;
use wsyn_synopsis::multi_dim::oneplus::OnePlusEps;

fn main() {
    let side = 8usize;
    let d = 2usize;
    let shape = NdShape::hypercube(side, d).unwrap();
    let data = quantize_to_i64(&cube_bumps(side, d, 4, (100.0, 500.0), 8.0, 31));
    let exact = IntegerExact::new(&shape, &data).unwrap();
    let scheme = OnePlusEps::new(&shape, &data).unwrap();
    println!(
        "## E10 — Theorem 3.4: (1+ε) scheme on an {side}x{side} cube (R_Z = {})\n",
        scheme.rz()
    );

    println!("### approximation ratio vs ε (per budget)\n");
    let mut rows = Vec::new();
    for b in [4usize, 8, 16] {
        let opt = exact.run(b).true_objective;
        for eps in [1.0, 0.5, 0.25, 0.1] {
            let (r, ms) = timed(|| scheme.run(b, eps));
            let ratio = if opt > 0.0 {
                r.true_objective / opt
            } else {
                1.0
            };
            assert!(
                r.true_objective <= (1.0 + eps) * opt + 1e-9,
                "guarantee violated: b={b} eps={eps}"
            );
            rows.push(vec![
                b.to_string(),
                f(eps),
                f(opt),
                f(r.true_objective),
                format!("{ratio:.4}"),
                format!("{:.4}", 1.0 + eps),
                f(ms),
            ]);
        }
    }
    md_table(
        &[
            "B",
            "ε",
            "exact OPT",
            "(1+ε) scheme",
            "measured ratio",
            "guaranteed ratio",
            "time (ms)",
        ],
        &rows,
    );

    println!("\n### τ-sweep internals (B = 8, ε = 0.25)\n");
    let (_, reports) = scheme.run_with_reports(8, 0.25);
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|t| {
            vec![
                t.tau.to_string(),
                t.forced.to_string(),
                t.true_objective.map_or_else(|| "infeasible".into(), f),
                t.states.to_string(),
            ]
        })
        .collect();
    md_table(
        &["τ", "|S_>τ| (forced)", "true abs err", "DP states"],
        &rows,
    );
    println!("\nmeasured ratio ≤ 1+ε at every (B, ε) (asserted)  ✓");
}
