//! E8: the "bad coin flips" phenomenon (§1) — the distribution of the
//! probabilistic synopsis's max relative error across coin-flip sequences,
//! against the single deterministic guarantee.
//!
//! For each workload, the MinRelVar assignment is drawn 1000 times; we
//! report the quantiles of the resulting max-relative-error distribution,
//! the fraction of fractional (y < 1) entries (only those produce
//! randomness), and the deterministic optimum for the same budget. The
//! deterministic value must lower-bound even the luckiest draw.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wsyn_bench::{f, md_table, workloads_1d};
use wsyn_prob::MinRelVar;
use wsyn_synopsis::metric::error_quantile;
use wsyn_synopsis::one_dim::MinMaxErr;
use wsyn_synopsis::ErrorMetric;

fn main() {
    let n = 128usize;
    let b = 12usize;
    let sanity = 1.0;
    let metric = ErrorMetric::relative(sanity);
    let draws = 1000u64;

    println!(
        "## E8 — coin-flip variance of probabilistic synopses (N = {n}, B = {b}, {draws} draws)\n"
    );
    let mut rows = Vec::new();
    for (name, data) in workloads_1d(n) {
        let det = MinMaxErr::new(&data).unwrap().run(b, metric).objective;
        let assignment = MinRelVar::new(&data).unwrap().assign(b, 6, sanity);
        let fractional = assignment
            .entries()
            .iter()
            .filter(|&&(_, y, _)| y < 1.0)
            .count();
        let mut errs = Vec::with_capacity(draws as usize);
        for seed in 0..draws {
            let mut rng = StdRng::seed_from_u64(seed);
            errs.push(assignment.draw(&mut rng).max_error(&data, metric));
        }
        let best = errs.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(det <= best + 1e-9, "{name}: a draw beat the optimum?!");
        rows.push(vec![
            name.to_string(),
            f(det),
            f(best),
            f(error_quantile(errs.clone(), 0.5)),
            f(error_quantile(errs.clone(), 0.95)),
            f(errs.iter().copied().fold(0.0f64, f64::max)),
            format!("{fractional}/{}", assignment.entries().len()),
        ]);
    }
    md_table(
        &[
            "workload",
            "deterministic (MinMaxErr)",
            "best draw",
            "median draw",
            "p95 draw",
            "worst draw",
            "fractional entries",
        ],
        &rows,
    );
    println!("\ndeterministic optimum ≤ best draw on every workload (asserted)  ✓");
}
