//! E4: Theorem 3.1 — `MinMaxErr` is optimal.
//!
//! Runs all four DP engines against the exhaustive-search oracle over
//! hundreds of random instances (N ≤ 16, all budgets, both metrics) and
//! reports the number of exact agreements. A single disagreement aborts.
//! The instances are integer-valued, so every engine's arithmetic is
//! dyadic-exact and the engines are additionally required to agree
//! **bitwise** — identical objective bit patterns and identical retained
//! coefficient sets, including the branch-and-bound `Dedup` engine vs.
//! its unpruned `DedupExhaustive` twin.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsyn_bench::md_table;
use wsyn_synopsis::one_dim::{Config, Engine, MinMaxErr, SplitSearch};
use wsyn_synopsis::{oracle, ErrorMetric};

fn main() {
    let mut rng = StdRng::seed_from_u64(2004);
    let mut rows = Vec::new();
    for n in [4usize, 8, 16] {
        for metric_name in ["absolute", "relative(s=1)"] {
            let metric = if metric_name == "absolute" {
                ErrorMetric::absolute()
            } else {
                ErrorMetric::relative(1.0)
            };
            let mut checks = 0usize;
            for _ in 0..40 {
                let data: Vec<f64> = (0..n)
                    .map(|_| f64::from(rng.gen_range(-20i32..=20)))
                    .collect();
                let solver = MinMaxErr::new(&data).unwrap();
                for b in 0..=n.min(8) {
                    let opt = oracle::exhaustive_1d(solver.tree(), &data, b, metric).objective;
                    for split in SplitSearch::ALL {
                        let mut witness: Option<(u64, Vec<usize>)> = None;
                        for engine in Engine::ALL {
                            let r = solver.run_with(b, metric, Config { engine, split });
                            assert!(
                                (r.objective - opt).abs() < 1e-9,
                                "OPTIMALITY VIOLATION: n={n} b={b} {metric:?} {engine:?} {split:?}: {} vs {opt} (data {data:?})",
                                r.objective
                            );
                            // Returned synopsis attains the objective.
                            let true_err = r.synopsis.max_error(&data, metric);
                            assert!((true_err - r.objective).abs() < 1e-9);
                            // Bitwise identity across engines (dyadic-exact
                            // integer data): same objective bits and same
                            // retained coefficient set as the first engine.
                            let bits = r.objective.to_bits();
                            let indices = r.synopsis.indices().clone();
                            match &witness {
                                None => witness = Some((bits, indices)),
                                Some((wbits, windices)) => {
                                    assert!(
                                        bits == *wbits && indices == *windices,
                                        "BITWISE DIVERGENCE: n={n} b={b} {metric:?} {engine:?} {split:?} vs Dedup (data {data:?})"
                                    );
                                }
                            }
                            checks += 1;
                        }
                    }
                }
            }
            rows.push(vec![
                n.to_string(),
                metric_name.to_string(),
                checks.to_string(),
                "0".to_string(),
            ]);
        }
    }
    println!("## E4 — Theorem 3.1: optimality of MinMaxErr vs exhaustive oracle\n");
    md_table(
        &[
            "N",
            "metric",
            "engine×split×budget×instance checks",
            "violations",
        ],
        &rows,
    );
    println!("\nall engines, all splits, all budgets: exact agreement with the oracle  ✓");
}
