//! E7: **maximum absolute error vs. budget** — the companion of E6 for the
//! paper's second target metric. Deterministic MinMaxErr vs. greedy L2 and
//! Proposition 3.3's lower bound (largest dropped |coefficient|), which the
//! optimum must and does respect while staying within a small factor of it.

use wsyn_bench::{f, md_table, workloads_1d};
use wsyn_haar::ErrorTree1d;
use wsyn_synopsis::greedy::greedy_l2_1d;
use wsyn_synopsis::one_dim::MinMaxErr;
use wsyn_synopsis::{prop33, ErrorMetric};

fn main() {
    let n = 256usize;
    let metric = ErrorMetric::absolute();
    println!("## E7 — max absolute error vs budget (N = {n})\n");
    for (name, data) in workloads_1d(n) {
        println!("### workload: {name}\n");
        let tree = ErrorTree1d::from_data(&data).unwrap();
        let det = MinMaxErr::new(&data).unwrap();
        let mut rows = Vec::new();
        for b in [8usize, 16, 24, 32] {
            let r = det.run(b, metric);
            let l2_syn = greedy_l2_1d(&tree, b);
            let l2 = l2_syn.max_error(&data, metric);
            let bound = prop33::max_dropped_abs_1d(&tree, &r.synopsis);
            assert!(r.objective <= l2 + 1e-9);
            assert!(r.objective >= bound - 1e-9, "Prop 3.3 violated");
            rows.push(vec![
                b.to_string(),
                f(r.objective),
                f(l2),
                f(bound),
                format!("{:.2}x", r.objective / bound.max(1e-12)),
                format!("{:.2}x", l2 / r.objective.max(1e-12)),
            ]);
        }
        md_table(
            &[
                "B",
                "MinMaxErr (optimal)",
                "greedy L2",
                "Prop 3.3 lower bound",
                "optimal vs bound",
                "L2 vs optimal",
            ],
            &rows,
        );
        println!();
    }
    println!("optimal ≤ greedy and optimal ≥ max dropped |coefficient| everywhere  ✓");
}
