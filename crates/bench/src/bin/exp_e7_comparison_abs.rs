//! E7: **maximum absolute error vs. budget** — the companion of E6 for the
//! paper's second target metric. Deterministic MinMaxErr vs. greedy L2 and
//! Proposition 3.3's lower bound (largest dropped |coefficient|), which the
//! optimum must and does respect while staying within a small factor of it.
//!
//! Both algorithms are driven through the uniform [`Thresholder`] trait,
//! and the independent budget rows of each sweep fan out through the
//! process-wide [`Pool`] (`wsyn_core::Pool`), whose `map_indexed`
//! returns rows in budget order for deterministic output. When the pool
//! resolves to a single thread the sweep instead runs sequentially
//! through [`Thresholder::threshold_reusing`] with one shared
//! [`SolverScratch`], so the DP memo built for earlier budgets is
//! reused by later ones; both modes produce identical numbers.

use wsyn_bench::{f, md_table, workloads_1d};
use wsyn_core::Pool;
use wsyn_synopsis::one_dim::MinMaxErr;
use wsyn_synopsis::thresholder::GreedyL2;
use wsyn_synopsis::{prop33, ErrorMetric, SolverScratch, Thresholder};

fn main() {
    let n = 256usize;
    let metric = ErrorMetric::absolute();
    let budgets = [8usize, 16, 24, 32];
    let pool = Pool::new();
    let parallel = pool.is_parallel_for(budgets.len());
    println!("## E7 — max absolute error vs budget (N = {n})\n");
    println!(
        "sweep mode: {} (pool threads = {})\n",
        if parallel {
            "parallel budget rows"
        } else {
            "sequential scratch-reusing"
        },
        pool.threads_for(budgets.len())
    );
    for (name, data) in workloads_1d(n) {
        println!("### workload: {name}\n");
        let det = MinMaxErr::new(&data).unwrap();
        let l2 = GreedyL2::new(&data).unwrap();
        let rows: Vec<Vec<String>> = if parallel {
            pool.map_indexed(budgets.to_vec(), |_, b| {
                // Uniform dispatch: the optimal DP and the baseline
                // answer the same (budget, metric) question through
                // the same interface.
                let solvers: [&(dyn Thresholder + Sync); 2] = [&det, &l2];
                let [opt, base] = solvers.map(|s| s.threshold(b, metric).unwrap());
                budget_row(b, opt, base, l2.tree())
            })
        } else {
            // Same uniform dispatch, but through the scratch-reusing entry
            // point: MinMaxErr keeps its DP memo warm across budgets while
            // GreedyL2's default implementation ignores the scratch.
            let mut scratch = SolverScratch::new();
            budgets
                .iter()
                .map(|&b| {
                    let solvers: [&(dyn Thresholder + Sync); 2] = [&det, &l2];
                    let [opt, base] =
                        solvers.map(|s| s.threshold_reusing(b, metric, &mut scratch).unwrap());
                    budget_row(b, opt, base, l2.tree())
                })
                .collect()
        };
        md_table(
            &[
                "B",
                "MinMaxErr (optimal)",
                "greedy L2",
                "Prop 3.3 lower bound",
                "optimal vs bound",
                "L2 vs optimal",
            ],
            &rows,
        );
        println!();
    }
    println!("optimal ≤ greedy and optimal ≥ max dropped |coefficient| everywhere  ✓");
}

fn budget_row(
    b: usize,
    opt: wsyn_synopsis::ThresholdRun,
    base: wsyn_synopsis::ThresholdRun,
    tree: &wsyn_haar::ErrorTree1d,
) -> Vec<String> {
    let opt_syn = opt.synopsis.into_one("E7").unwrap();
    let bound = prop33::max_dropped_abs_1d(tree, &opt_syn);
    assert!(opt.objective <= base.objective + 1e-9);
    assert!(opt.objective >= bound - 1e-9, "Prop 3.3 violated");
    vec![
        b.to_string(),
        f(opt.objective),
        f(base.objective),
        f(bound),
        format!("{:.2}x", opt.objective / bound.max(1e-12)),
        format!("{:.2}x", base.objective / opt.objective.max(1e-12)),
    ]
}
