//! E13: the working-space claim of Theorem 3.1.
//!
//! The paper argues the DP's total table is `O(N²B)` but only `O(NB)` need
//! ever be memory-resident (one "line" per tree level, freeing children
//! after the parent combines them). We measure proxies for both: the
//! *peak live table entries* of the bottom-up engine (which actually frees
//! child tables) against the *total retained states* of the memoizing
//! engines, across an `N` sweep. The paper's shapes: total grows ~4× per
//! doubling of `N` (quadratic), peak-live grows ~2× (linear).

use wsyn_bench::{f, md_table, timed};
use wsyn_datagen::{zipf, ZipfPlacement};
use wsyn_synopsis::one_dim::{Config, Engine, MinMaxErr, SplitSearch};
use wsyn_synopsis::ErrorMetric;

/// Analytic peak-live-entry count for the bottom-up engine: on the DFS
/// spine, one finished sibling table plus one in-progress table per level;
/// a level-`l` node's table holds at most `min(2^l, distinct e) · (B+1)`
/// entries. We recompute the actual distinct-incoming-error counts from
/// the tree to report the true peak.
fn peak_live_entries(data: &[f64], b: usize) -> usize {
    // Distinct subset sums per level along the leftmost spine is a faithful
    // stand-in (tables on one spine are what coexist).
    use std::collections::HashSet;
    let tree = wsyn_haar::ErrorTree1d::from_data(data).expect("pow2");
    let n = data.len();
    let mut peak = 0usize;
    let mut anc: Vec<f64> = Vec::new();
    let mut id = 0usize;
    let mut live = 0usize;
    while id < n {
        let mut sums: HashSet<u64> = HashSet::new();
        sums.insert(0f64.to_bits());
        let mut list: Vec<f64> = vec![0.0];
        for &a in &anc {
            let mut next = Vec::with_capacity(list.len() * 2);
            for &s in &list {
                next.push(s);
                let v = s + a;
                let v = if v == 0.0 { 0.0 } else { v };
                if sums.insert(v.to_bits()) {
                    next.push(v);
                }
            }
            list = next;
        }
        live += sums.len() * (b + 1) * 2; // two sibling tables per level
        peak = peak.max(live);
        anc.push(tree.coeff(id));
        id = if id == 0 { 1 } else { 2 * id };
    }
    peak
}

fn main() {
    let b = 10usize;
    let metric = ErrorMetric::relative(1.0);
    println!("## E13 — Theorem 3.1's O(NB) working space vs O(N²B) total table\n");
    let mut rows = Vec::new();
    let mut prev_total: Option<f64> = None;
    let mut prev_peak: Option<f64> = None;
    for n in [64usize, 128, 256, 512] {
        let data = zipf(n, 1.0, 100_000.0, ZipfPlacement::Shuffled, 5);
        let solver = MinMaxErr::new(&data).unwrap();
        let (r, _ms) = timed(|| {
            solver.run_with(
                b,
                metric,
                Config {
                    engine: Engine::SubsetMask,
                    split: SplitSearch::Linear,
                },
            )
        });
        let total = r.stats.states as f64;
        let peak = peak_live_entries(&data, b) as f64;
        rows.push(vec![
            n.to_string(),
            f(total),
            prev_total.map_or_else(|| "—".into(), |p| format!("{:.2}x", total / p)),
            f(peak),
            prev_peak.map_or_else(|| "—".into(), |p| format!("{:.2}x", peak / p)),
            format!("{:.1}x", total / peak),
        ]);
        prev_total = Some(total);
        prev_peak = Some(peak);
    }
    md_table(
        &[
            "N",
            "total DP states (subset engine)",
            "growth",
            "peak live entries (bottom-up spine)",
            "growth",
            "total / peak",
        ],
        &rows,
    );
    println!(
        "\nexpected shapes: total ≈ quadratic growth (4x per doubling), peak ≈ linear (2x);\n\
         the widening total/peak ratio is the memory the bottom-up engine saves."
    );
}
