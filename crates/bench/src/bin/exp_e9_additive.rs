//! E9: Theorem 3.2 — the ε-additive multi-dimensional scheme.
//!
//! On 2-D and 3-D bump cubes: (a) the measured deviation from the exact
//! optimum (pseudo-polynomial integer DP) stays within the `ε·R` guarantee
//! at every ε; (b) runtime and DP-state counts grow as ε shrinks (the
//! `1/ε` factor of the theorem); (c) the DP's rounded objective brackets
//! the true objective of the traced synopsis.

use wsyn_bench::{f, md_table, timed};
use wsyn_datagen::{cube_bumps, quantize_to_i64};
use wsyn_haar::nd::{NdArray, NdShape};
use wsyn_synopsis::multi_dim::additive::AdditiveScheme;
use wsyn_synopsis::multi_dim::integer::IntegerExact;
use wsyn_synopsis::ErrorMetric;

fn main() {
    println!("## E9 — Theorem 3.2: ε-additive scheme (absolute error)\n");
    for (side, d) in [(8usize, 2usize), (4, 3)] {
        let shape = NdShape::hypercube(side, d).unwrap();
        let data = quantize_to_i64(&cube_bumps(side, d, 3, (80.0, 300.0), 10.0, 17));
        let data_f: Vec<f64> = data.iter().map(|&v| v as f64).collect();
        let arr = NdArray::new(shape.clone(), data_f.clone()).unwrap();
        let scheme = AdditiveScheme::new(&arr).unwrap();
        let exact = IntegerExact::new(&shape, &data).unwrap();
        let r_max = scheme
            .tree()
            .coeffs()
            .data()
            .iter()
            .fold(0.0f64, |a, &c| a.max(c.abs()));
        let b = (side.pow(d as u32) / 8).max(4);
        let (opt_r, opt_ms) = timed(|| exact.run(b));
        let opt = opt_r.true_objective;
        println!(
            "### {side}^{d} cube, B = {b}, R = {r_max:.1}, exact OPT = {opt:.3} ({opt_ms:.0} ms)\n"
        );
        let mut rows = Vec::new();
        for eps in [1.0, 0.5, 0.25, 0.1, 0.05] {
            let (r, ms) = timed(|| scheme.run(b, ErrorMetric::absolute(), eps));
            let deviation = r.true_objective - opt;
            let guarantee = eps * r_max;
            assert!(
                deviation
                    <= guarantee
                        + (1u64 << d) as f64 * f64::from(side.trailing_zeros())
                        + 1.0
                        + 1e-9,
                "guarantee violated at eps={eps}: deviation {deviation} > {guarantee}"
            );
            rows.push(vec![
                f(eps),
                f(r.true_objective),
                f(deviation),
                f(guarantee),
                r.states.to_string(),
                f(ms),
            ]);
        }
        md_table(
            &[
                "ε",
                "true objective",
                "deviation from OPT",
                "guarantee ε·R",
                "DP states",
                "time (ms)",
            ],
            &rows,
        );
        println!();
    }
    println!("measured deviation within the Theorem 3.2 envelope at every ε  ✓");
}
