//! E11: approximate query processing with guarantees (§1's motivation).
//!
//! Over a Zipfian selectivity workload: the distribution of per-query
//! range-count errors under equal-size MinMaxErr, greedy-L2 and MinRelVar
//! synopses, plus verification that the deterministic per-answer intervals
//! of `wsyn-aqp::bounds` contain every true answer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsyn_aqp::{bounds, QueryEngine1d};
use wsyn_bench::{f, md_table};
use wsyn_datagen::{zipf, ZipfPlacement};
use wsyn_haar::ErrorTree1d;
use wsyn_prob::MinRelVar;
use wsyn_synopsis::greedy::greedy_l2_1d;
use wsyn_synopsis::metric::error_quantile;
use wsyn_synopsis::one_dim::MinMaxErr;
use wsyn_synopsis::ErrorMetric;

fn main() {
    let n = 256usize;
    let b = 16usize;
    let sanity = 1.0;
    let metric = ErrorMetric::relative(sanity);
    let data = zipf(n, 1.1, 200_000.0, ZipfPlacement::Shuffled, 3);

    let tree = ErrorTree1d::from_data(&data).unwrap();
    let det = MinMaxErr::new(&data).unwrap().run(b, metric);
    // On spiky shuffled-Zipf data the max-relative-error optimum saturates
    // at 1.0 (the empty synopsis is genuinely optimal — see the module
    // docs of wsyn_synopsis::one_dim); the *absolute*-metric synopsis is
    // the natural deterministic choice for range aggregates, so both are
    // reported.
    let det_abs = MinMaxErr::new(&data)
        .unwrap()
        .run(b, ErrorMetric::absolute());
    let l2 = greedy_l2_1d(&tree, b);
    let prob = {
        let a = MinRelVar::new(&data).unwrap().assign(b, 6, sanity);
        let mut rng = StdRng::seed_from_u64(1);
        a.draw(&mut rng)
    };

    // 500 random range-count queries.
    let mut rng = StdRng::seed_from_u64(99);
    let queries: Vec<(usize, usize)> = (0..500)
        .map(|_| {
            let lo = rng.gen_range(0..n - 1);
            let hi = rng.gen_range(lo + 1..=n);
            (lo, hi)
        })
        .collect();

    println!("## E11 — range-count query error over a Zipf(1.1) column (N = {n}, B = {b}, 500 queries)\n");
    let mut rows = Vec::new();
    for (name, syn) in [
        ("MinMaxErr (rel)", det.synopsis.clone()),
        ("MinMaxErr (abs)", det_abs.synopsis.clone()),
        ("greedy-L2", l2),
        ("MinRelVar draw", prob),
    ] {
        let engine = QueryEngine1d::new(syn);
        let errs: Vec<f64> = queries
            .iter()
            .map(|&(lo, hi)| {
                let exact: f64 = data[lo..hi].iter().sum();
                let est = engine.range_sum(lo..hi);
                (est - exact).abs() / exact.max(1.0)
            })
            .collect();
        rows.push(vec![
            name.to_string(),
            f(error_quantile(errs.clone(), 0.5)),
            f(error_quantile(errs.clone(), 0.9)),
            f(error_quantile(errs.clone(), 0.99)),
            f(errs.iter().copied().fold(0.0f64, f64::max)),
        ]);
    }
    md_table(&["synopsis", "median rel err", "p90", "p99", "max"], &rows);

    // Deterministic guarantees: every point interval contains the truth.
    let engine = QueryEngine1d::new(det.synopsis.clone());
    let mut violations = 0usize;
    for (i, &d) in data.iter().enumerate() {
        let iv = bounds::point_relative(engine.point(i), det.objective, sanity);
        if !iv.contains(d) {
            violations += 1;
        }
    }
    println!("\nper-answer interval check (deterministic synopsis): {violations} violations out of {n} points");
    assert_eq!(violations, 0);
    println!("every true value inside its guaranteed interval  ✓");

    // Absolute-mode range-sum intervals.
    let engine_abs = QueryEngine1d::new(det_abs.synopsis.clone());
    let mut violations = 0usize;
    for &(lo, hi) in &queries {
        let exact: f64 = data[lo..hi].iter().sum();
        let iv =
            bounds::range_sum_absolute(engine_abs.range_sum(lo..hi), det_abs.objective, hi - lo);
        if !iv.contains(exact) {
            violations += 1;
        }
    }
    println!(
        "range-sum interval check (absolute synopsis): {violations} violations out of {} queries",
        queries.len()
    );
    assert_eq!(violations, 0);
}
