//! E15: the paper's §5 closing question — *"could other wavelet bases be
//! better suited for relative-error metrics?"* — made quantitative.
//!
//! Compares, at equal budget, on max relative error (sanity bound = the
//! log shift):
//!
//! * the paper's **direct optimum** (`MinMaxErr`, relative metric) —
//!   `O(N²B log B)`;
//! * **log-MinMaxErr** — the optimal *absolute*-error DP applied in the
//!   log domain (`ln(d + s)`), whose guarantee transfers multiplicatively;
//! * **log-greedy** — plain `O(N log N)` greedy L2 in the log domain;
//! * **plain greedy** on the raw data (the conventional baseline).
//!
//! Key subtlety: `MinMaxErr` is optimal **among Haar synopses of the raw
//! data**; the log-domain reconstruction `exp(ŷ) − s` is *nonlinear* and
//! lives outside that space, so it can — and on skewed data does — beat
//! the direct optimum. That is precisely the affirmative evidence the
//! paper's open question asks for, and the table marks where it happens.

use wsyn_bench::{f, md_table, timed, workloads_1d};
use wsyn_haar::ErrorTree1d;
use wsyn_synopsis::greedy::greedy_l2_1d;
use wsyn_synopsis::logdomain::LogDomainSynopsis;
use wsyn_synopsis::one_dim::MinMaxErr;
use wsyn_synopsis::ErrorMetric;

fn main() {
    let n = 256usize;
    let s = 1.0;
    let metric = ErrorMetric::relative(s);
    println!("## E15 — §5's \"other bases\" question: log-domain Haar for relative error (N = {n}, s = {s})\n");
    for (name, data) in workloads_1d(n) {
        // Log domain requires non-negative data; all standard workloads are.
        println!("### workload: {name}\n");
        let tree = ErrorTree1d::from_data(&data).unwrap();
        let direct = MinMaxErr::new(&data).unwrap();
        let mut rows = Vec::new();
        for b in [8usize, 16, 32] {
            let (d, d_ms) = timed(|| direct.run(b, metric));
            let (lm, lm_ms) = timed(|| LogDomainSynopsis::min_max(&data, b, s).unwrap());
            let (lg, lg_ms) = timed(|| LogDomainSynopsis::greedy(&data, b, s).unwrap());
            let (pg, pg_ms) = timed(|| greedy_l2_1d(&tree, b));
            let lm_err = lm.max_error(&data, metric);
            let lg_err = lg.max_error(&data, metric);
            let pg_err = pg.max_error(&data, metric);
            // Plain greedy IS a Haar synopsis: the direct DP must beat it.
            assert!(d.objective <= pg_err + 1e-9, "Haar optimality violated");
            let mark = |v: f64| {
                if v < d.objective - 1e-9 {
                    format!("{} ◀ beats Haar-optimal", f(v))
                } else {
                    f(v)
                }
            };
            rows.push(vec![
                b.to_string(),
                format!("{} ({} ms)", f(d.objective), f(d_ms)),
                format!("{} ({} ms)", mark(lm_err), f(lm_ms)),
                format!("{} ({} ms)", mark(lg_err), f(lg_ms)),
                format!("{} ({} ms)", f(pg_err), f(pg_ms)),
            ]);
        }
        md_table(
            &[
                "B",
                "direct MinMaxErr (optimal)",
                "log-MinMaxErr",
                "log-greedy (O(N log N))",
                "plain greedy",
            ],
            &rows,
        );
        println!();
    }
    println!(
        "the direct DP is optimal among Haar synopses (asserted vs plain greedy);\n\
         the nonlinear log-domain basis can beat it — affirmative evidence for §5's question."
    );
}
