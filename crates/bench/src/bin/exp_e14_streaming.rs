//! E14: dynamic maintenance (the related-work setting of §4, with this
//! paper's guarantees).
//!
//! A frequency vector receives a stream of point updates. We compare three
//! maintenance policies for a budget-`B` synopsis:
//!
//! 1. **static** — build once, never update (guarantee decays);
//! 2. **adaptive** — `wsyn-stream`'s rebuild policy (rebuild when the
//!    conservative drift bound exceeds `tolerance ×` the built objective);
//! 3. **always-rebuild** — re-run the DP after every update (the quality
//!    ceiling, at absurd cost).
//!
//! Reported: true max absolute error at checkpoints, number of DP runs,
//! and update throughput of the exact O(log N) coefficient maintenance.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsyn_bench::{f, md_table, timed};
use wsyn_datagen::{zipf, ZipfPlacement};
use wsyn_stream::{AdaptiveMaxErrSynopsis, DynamicErrorTree};
use wsyn_synopsis::one_dim::MinMaxErr;
use wsyn_synopsis::ErrorMetric;

fn main() {
    let n = 128usize;
    let b = 10usize;
    let updates = 2000usize;
    let data = zipf(n, 0.9, 50_000.0, ZipfPlacement::Shuffled, 8);
    let metric = ErrorMetric::absolute();

    println!("## E14 — synopsis maintenance under {updates} point updates (N = {n}, B = {b})\n");

    // Shared update stream.
    let mut rng = StdRng::seed_from_u64(77);
    let stream: Vec<(usize, f64)> = (0..updates)
        .map(|_| (rng.gen_range(0..n), f64::from(rng.gen_range(-40i32..=40))))
        .collect();

    // Policies.
    let static_syn = MinMaxErr::new(&data).unwrap().run(b, metric).synopsis;
    let mut adaptive = AdaptiveMaxErrSynopsis::new(&data, b, metric, 2.0).unwrap();
    let mut current = data.clone();
    let mut rebuild_errs: Vec<(usize, f64, f64, f64)> = Vec::new();

    for (step, &(i, delta)) in stream.iter().enumerate() {
        current[i] += delta;
        adaptive.update(i, delta).unwrap();
        if (step + 1) % 500 == 0 {
            let static_err = static_syn.max_error(&current, metric);
            let adaptive_err = adaptive.synopsis().max_error(&current, metric);
            let fresh = MinMaxErr::new(&current).unwrap().run(b, metric).objective;
            rebuild_errs.push((step + 1, static_err, adaptive_err, fresh));
        }
    }

    let mut rows = Vec::new();
    for (step, st, ad, fresh) in &rebuild_errs {
        rows.push(vec![
            step.to_string(),
            f(*st),
            f(*ad),
            f(*fresh),
            format!("{:.2}x", ad / fresh.max(1e-12)),
        ]);
    }
    md_table(
        &[
            "updates",
            "static synopsis err",
            "adaptive policy err",
            "fresh optimum",
            "adaptive vs optimum",
        ],
        &rows,
    );
    println!(
        "\nadaptive policy: {} DP rebuilds over {updates} updates (always-rebuild would need {updates})",
        adaptive.rebuilds()
    );

    // Raw update throughput of the exact coefficient maintenance.
    let mut tree = DynamicErrorTree::new(&data).unwrap();
    let reps = 200_000usize;
    let (_, ms) = timed(|| {
        for k in 0..reps {
            let (i, delta) = stream[k % stream.len()];
            tree.update(i, delta);
        }
    });
    println!(
        "\nexact coefficient maintenance: {reps} updates in {ms:.1} ms \
         ({:.1} M updates/s, O(log N) per update)",
        reps as f64 / ms / 1e3
    );
    // Exactness check after the hammering.
    let drift = {
        let mut t2 = tree.clone();
        t2.rebuild()
    };
    println!("accumulated float drift after {reps} updates: {drift:.2e} (corrected by rebuild)");
    assert!(drift < 1e-6);
}
