//! E6: the deferred headline experiment — **maximum relative error vs.
//! budget** for deterministic MinMaxErr against the conventional greedy L2
//! baseline and the probabilistic MinRelVar / MinRelBias synopses of
//! Garofalakis & Gibbons (the comparison the paper's §5 promises).
//!
//! Expected shape: MinMaxErr (provably optimal) lower-bounds everything at
//! every budget; greedy L2 suffers most on skewed/spiky workloads (small
//! data values under-served); probabilistic draws land between, with
//! per-draw spread (E8 quantifies the spread).
//!
//! The budgets of a sweep are independent DP runs over shared immutable
//! solvers, so each budget row is one item on the process-wide
//! [`Pool`] (`wsyn_core::Pool`), whose `map_indexed` returns rows in
//! budget order, keeping the output deterministic. When the pool
//! resolves to a single thread (1-CPU host, `WSYN_POOL_THREADS=1`, or
//! the min-work floor), the sweep instead runs sequentially through one
//! warm `DedupWorkspace` — larger budgets seed the memo for smaller
//! ones. Both modes produce identical numbers (warm reuse is bitwise
//! lossless).

use rand::rngs::StdRng;
use rand::SeedableRng;
use wsyn_bench::{f, md_table, workloads_1d};
use wsyn_core::Pool;
use wsyn_haar::ErrorTree1d;
use wsyn_prob::{MinRelBias, MinRelVar};
use wsyn_synopsis::greedy::greedy_l2_1d;
use wsyn_synopsis::one_dim::{DedupWorkspace, MinMaxErr, SplitSearch};
use wsyn_synopsis::ErrorMetric;

fn main() {
    let n = 256usize;
    let sanity = 1.0;
    let metric = ErrorMetric::relative(sanity);
    let q = 6usize; // fractional-storage quantization for the GG baselines
    let draws = 20u64;
    let budgets = [8usize, 16, 24, 32];

    let pool = Pool::new();
    let parallel = pool.is_parallel_for(budgets.len());
    println!("## E6 — max relative error vs budget (N = {n}, sanity s = {sanity})\n");
    println!(
        "sweep mode: {} (pool threads = {})\n",
        if parallel {
            "parallel budget rows"
        } else {
            "sequential warm-workspace"
        },
        pool.threads_for(budgets.len())
    );
    for (name, data) in workloads_1d(n) {
        println!("### workload: {name}\n");
        let tree = ErrorTree1d::from_data(&data).unwrap();
        let det = MinMaxErr::new(&data).unwrap();
        let mrv = MinRelVar::new(&data).unwrap();
        let mrb = MinRelBias::new(&data).unwrap();
        let rows: Vec<Vec<String>> = if parallel {
            pool.map_indexed(budgets.to_vec(), |_, b| {
                let opt = det.run(b, metric).objective;
                budget_row(b, opt, &tree, &data, metric, q, sanity, draws, &mrv, &mrb)
            })
        } else {
            // One warm memo serves the whole sweep; each budget after the
            // first is answered mostly out of already-materialized states.
            let mut ws = DedupWorkspace::new();
            budgets
                .iter()
                .map(|&b| {
                    let opt = det
                        .run_warm(b, metric, SplitSearch::default(), &mut ws)
                        .objective;
                    budget_row(b, opt, &tree, &data, metric, q, sanity, draws, &mrv, &mrb)
                })
                .collect()
        };
        md_table(
            &[
                "B",
                "MinMaxErr (optimal)",
                "greedy L2",
                "MinRelVar mean/worst",
                "MinRelBias mean/worst",
                "L2 vs optimal",
            ],
            &rows,
        );
        println!();
    }
    println!("MinMaxErr ≤ every baseline at every budget (asserted)  ✓");
}

#[allow(clippy::too_many_arguments)]
fn budget_row(
    b: usize,
    opt: f64,
    tree: &ErrorTree1d,
    data: &[f64],
    metric: ErrorMetric,
    q: usize,
    sanity: f64,
    draws: u64,
    mrv: &MinRelVar,
    mrb: &MinRelBias,
) -> Vec<String> {
    let l2 = greedy_l2_1d(tree, b).max_error(data, metric);
    let (rv_mean, rv_worst) = draw_stats(&mrv.assign(b, q, sanity), data, metric, draws);
    let (rb_mean, rb_worst) = draw_stats(&mrb.assign(b, q, sanity), data, metric, draws);
    assert!(opt <= l2 + 1e-9, "optimality violated vs greedy");
    assert!(opt <= rv_worst + 1e-9, "optimality violated vs MinRelVar");
    vec![
        b.to_string(),
        f(opt),
        f(l2),
        format!("{} / {}", f(rv_mean), f(rv_worst)),
        format!("{} / {}", f(rb_mean), f(rb_worst)),
        format!("{:.1}x", l2 / opt.max(1e-12)),
    ]
}

fn draw_stats(
    assignment: &wsyn_prob::ProbAssignment,
    data: &[f64],
    metric: ErrorMetric,
    draws: u64,
) -> (f64, f64) {
    let mut worst = 0.0f64;
    let mut sum = 0.0f64;
    for seed in 0..draws {
        let mut rng = StdRng::seed_from_u64(seed);
        let err = assignment.draw(&mut rng).max_error(data, metric);
        worst = worst.max(err);
        sum += err;
    }
    (sum / draws as f64, worst)
}
