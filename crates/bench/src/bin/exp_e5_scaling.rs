//! E5: Theorem 3.1 — `O(N² B log B)` running time, and engine ablations.
//!
//! Measures wall-clock time of the default engine across an `N` sweep
//! (fixed `B`) and a `B` sweep (fixed `N`), reporting the empirical growth
//! ratios (the `N` sweep should grow ≈4× per doubling, i.e. quadratically;
//! the `B` sweep ≈ linearly up to the `log B` factor). A warm-workspace
//! descending `B` sweep shows the cross-run memo reuse payoff. Also
//! compares the four engines and the two split-search strategies on a
//! fixed instance, including their DP state counts (the dedup-vs-subset
//! ratio quantifies how much incoming-error merging saves; the
//! Dedup-vs-DedupExhaustive ratio quantifies branch-and-bound pruning).

use wsyn_bench::{f, md_table, timed};
use wsyn_datagen::{zipf, ZipfPlacement};
use wsyn_synopsis::one_dim::{Config, DedupWorkspace, Engine, MinMaxErr, SplitSearch};
use wsyn_synopsis::ErrorMetric;

fn main() {
    let metric = ErrorMetric::relative(1.0);

    println!("## E5 — runtime scaling of MinMaxErr (dedup engine, binary split)\n");
    println!("### N sweep (B = 12)\n");
    let mut rows = Vec::new();
    let mut prev = None;
    for n in [64usize, 128, 256, 512] {
        let data = zipf(n, 1.0, 100_000.0, ZipfPlacement::Shuffled, 5);
        let solver = MinMaxErr::new(&data).unwrap();
        let (r, ms) = timed(|| solver.run(12, metric));
        let ratio = prev.map_or(f64::NAN, |p: f64| ms / p);
        rows.push(vec![
            n.to_string(),
            f(ms),
            if ratio.is_nan() {
                "—".into()
            } else {
                format!("{ratio:.2}x")
            },
            r.stats.states.to_string(),
        ]);
        prev = Some(ms);
    }
    md_table(&["N", "time (ms)", "vs previous", "DP states"], &rows);

    println!("\n### B sweep (N = 256)\n");
    let data = zipf(256, 1.0, 100_000.0, ZipfPlacement::Shuffled, 5);
    let solver = MinMaxErr::new(&data).unwrap();
    let mut rows = Vec::new();
    let mut prev = None;
    for b in [4usize, 8, 16, 32] {
        let (r, ms) = timed(|| solver.run(b, metric));
        let ratio = prev.map_or(f64::NAN, |p: f64| ms / p);
        rows.push(vec![
            b.to_string(),
            f(ms),
            if ratio.is_nan() {
                "—".into()
            } else {
                format!("{ratio:.2}x")
            },
            r.stats.states.to_string(),
        ]);
        prev = Some(ms);
    }
    md_table(&["B", "time (ms)", "vs previous", "DP states"], &rows);

    println!("\n### warm-workspace descending B sweep (N = 256)\n");
    // Same instance as the cold sweep above; budgets descend so every later
    // (smaller) budget is answered almost entirely out of the warm memo.
    let mut ws = DedupWorkspace::new();
    let mut rows = Vec::new();
    for b in [32usize, 16, 8, 4] {
        let (warm, warm_ms) = timed(|| solver.run_warm(b, metric, SplitSearch::Binary, &mut ws));
        let (cold, cold_ms) = timed(|| solver.run(b, metric));
        assert!(
            warm.objective.to_bits() == cold.objective.to_bits(),
            "warm/cold divergence at b={b}"
        );
        rows.push(vec![
            b.to_string(),
            f(warm_ms),
            f(cold_ms),
            warm.stats.states.to_string(),
            warm.stats.peak_live.to_string(),
        ]);
    }
    md_table(
        &[
            "B",
            "warm time (ms)",
            "cold time (ms)",
            "resident states",
            "lifetime peak_live",
        ],
        &rows,
    );
    println!("\nwarm sweep objectives are bit-identical to cold runs  ✓");

    println!("\n### engine & split ablation (N = 128, B = 10)\n");
    let data = zipf(128, 1.0, 100_000.0, ZipfPlacement::Shuffled, 5);
    let solver = MinMaxErr::new(&data).unwrap();
    let mut rows = Vec::new();
    let mut objective = None;
    for engine in [
        Engine::Dedup,
        Engine::DedupExhaustive,
        Engine::SubsetMask,
        Engine::BottomUp,
    ] {
        for split in [SplitSearch::Binary, SplitSearch::Linear] {
            let (r, ms) = timed(|| solver.run_with(10, metric, Config { engine, split }));
            match objective {
                None => objective = Some(r.objective),
                Some(o) => assert!(
                    (r.objective - o).abs() < 1e-9,
                    "engines disagree: {engine:?}/{split:?}"
                ),
            }
            rows.push(vec![
                format!("{engine:?}"),
                format!("{split:?}"),
                f(ms),
                r.stats.states.to_string(),
                f(r.objective),
            ]);
        }
    }
    md_table(
        &["engine", "split", "time (ms)", "DP states", "objective"],
        &rows,
    );
    println!("\nall eight configurations return the identical optimal objective  ✓");
}
