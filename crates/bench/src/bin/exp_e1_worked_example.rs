//! E1 + E2: the §2.1 worked example and the Figure 1(a) error tree.
//!
//! Regenerates the paper's decomposition table for
//! `A = [2, 2, 0, 2, 3, 5, 4, 4]`, the transform
//! `W_A = [11/4, -5/4, 1/2, 0, 0, -1, -1, 0]`, and Equation (1)'s
//! reconstruction `d_4 = c_0 - c_1 + c_6 = 3`. Any mismatch aborts.

use wsyn_bench::md_table;
use wsyn_haar::{transform, ErrorTree1d};

fn main() {
    let a = [2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0];
    println!("## E1 — §2.1 decomposition table (A = {a:?})\n");

    // Regenerate the resolution table exactly as printed in the paper.
    let mut rows = Vec::new();
    let mut cur = a.to_vec();
    let mut resolution = 3i32;
    rows.push(vec![
        resolution.to_string(),
        format!("{cur:?}"),
        "—".to_string(),
    ]);
    let mut details_by_level = Vec::new();
    while cur.len() > 1 {
        let half = cur.len() / 2;
        let avg: Vec<f64> = (0..half)
            .map(|i| (cur[2 * i] + cur[2 * i + 1]) / 2.0)
            .collect();
        let det: Vec<f64> = (0..half)
            .map(|i| (cur[2 * i] - cur[2 * i + 1]) / 2.0)
            .collect();
        resolution -= 1;
        rows.push(vec![
            resolution.to_string(),
            format!("{avg:?}"),
            format!("{det:?}"),
        ]);
        details_by_level.push(det.clone());
        cur = avg;
    }
    md_table(&["Resolution", "Averages", "Detail Coefficients"], &rows);

    // Paper's expected values.
    assert_eq!(rows[1][1], "[2.0, 1.0, 4.0, 4.0]");
    assert_eq!(rows[1][2], "[0.0, -1.0, -1.0, 0.0]");
    assert_eq!(rows[2][1], "[1.5, 4.0]");
    assert_eq!(rows[2][2], "[0.5, 0.0]");
    assert_eq!(rows[3][1], "[2.75]");
    assert_eq!(rows[3][2], "[-1.25]");

    let w = transform::forward(&a).unwrap();
    println!("\nW_A = {w:?}");
    assert_eq!(w, vec![2.75, -1.25, 0.5, 0.0, 0.0, -1.0, -1.0, 0.0]);
    println!("matches the paper's W_A = [11/4, -5/4, 1/2, 0, 0, -1, -1, 0]  ✓");

    // E2: Figure 1(a) / Equation (1).
    let tree = ErrorTree1d::from_data(&a).unwrap();
    let path: Vec<(usize, f64)> = tree.path(4);
    println!("\n## E2 — Equation (1) on the Figure 1(a) tree\n");
    println!(
        "path(d_4) = {:?} (signs {:?})",
        path.iter()
            .map(|&(j, _)| format!("c_{j}"))
            .collect::<Vec<_>>(),
        path.iter().map(|&(_, s)| s).collect::<Vec<_>>()
    );
    let d4 = tree.reconstruct(4);
    println!("d_4 = c_0 - c_1 + c_6 = 11/4 + 5/4 - 1 = {d4}");
    assert_eq!(d4, 3.0);

    // Full reconstruction identity for good measure.
    assert_eq!(tree.reconstruct_all(), a.to_vec());
    println!("\nall reconstructions exact  ✓");
}
