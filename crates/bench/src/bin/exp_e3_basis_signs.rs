//! E3: Figure 1(b) — support regions and signs of the sixteen nonstandard
//! two-dimensional Haar basis functions — and Figure 2's error tree
//! structure for the 4×4 coefficient array.
//!
//! Each basis function is materialized by inverse-transforming a unit
//! coefficient; its sign pattern is printed and checked against the
//! quadrant rule (`+` where `x_k` is in the low half along every set
//! offset dimension an even number of flips away, blank outside the
//! support).

use wsyn_haar::nd::NodeChildren;
use wsyn_haar::nd::{nonstandard, NdArray, NdShape};
use wsyn_haar::{ErrorTreeNd, NodeRef};

fn main() {
    let shape = NdShape::hypercube(4, 2).unwrap();
    println!("## E3 — Figure 1(b): 4x4 nonstandard basis functions\n");
    for pos in 0..16usize {
        let mut coeffs = NdArray::zeros(shape.clone());
        coeffs.data_mut()[pos] = 1.0;
        let basis = nonstandard::inverse(&coeffs).unwrap();
        let coord = shape.delinearize(pos);
        println!("W_A[{},{}]:", coord[0], coord[1]);
        for x0 in 0..4 {
            let mut line = String::from("  ");
            for x1 in 0..4 {
                let v = basis.get(&[x0, x1]);
                line.push(if v > 0.0 {
                    '+'
                } else if v < 0.0 {
                    '-'
                } else {
                    '.'
                });
                line.push(' ');
            }
            println!("{line}");
        }
        // Verify: every nonzero entry is ±1 and the counts match the
        // quadrant structure (equal +/- counts for detail coefficients).
        let plus = basis.data().iter().filter(|&&v| v > 0.0).count();
        let minus = basis.data().iter().filter(|&&v| v < 0.0).count();
        if pos == 0 {
            assert_eq!((plus, minus), (16, 0), "overall average is all +");
        } else {
            assert_eq!(plus, minus, "detail signs must balance (pos {pos})");
        }
    }

    println!("\n## Figure 2 — error-tree structure for the 4x4 array\n");
    let vals: Vec<f64> = (0..16).map(f64::from).collect();
    let tree = ErrorTreeNd::from_data(&NdArray::new(shape.clone(), vals).unwrap()).unwrap();
    println!("root: W_A[0,0] (overall average), single child");
    let top = NodeRef { level: 0, index: 0 };
    let describe = |node: NodeRef| -> String {
        let coeffs = tree.node_coeffs(node);
        let names: Vec<String> = coeffs
            .iter()
            .map(|c| {
                let xy = shape.delinearize(c.pos);
                format!("W_A[{},{}]", xy[0], xy[1])
            })
            .collect();
        names.join(", ")
    };
    println!("level-0 node: {{{}}}", describe(top));
    assert_eq!(tree.node_coeffs(top).len(), 3);
    match tree.children(top) {
        NodeChildren::Nodes(children) => {
            assert_eq!(children.len(), 4);
            for child in children {
                println!(
                    "  level-1 node {:?}: {{{}}}",
                    tree.node_pos(child),
                    describe(child)
                );
                assert_eq!(tree.node_coeffs(child).len(), 3);
                match tree.children(child) {
                    NodeChildren::Cells(cells) => assert_eq!(cells.len(), 4),
                    _ => unreachable!("level-1 children are data cells"),
                }
            }
        }
        _ => unreachable!("4x4 has two levels"),
    }
    println!(
        "\nstructure matches Figure 2 (1 root + 1 + 4 nodes, 3 coefficients each, 2^D children)  ✓"
    );
}
