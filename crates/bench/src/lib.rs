//! # wsyn-bench — experiment harness
//!
//! One binary per experiment of DESIGN.md's per-experiment index
//! (`exp_e1` … `exp_e12`), each printing the markdown tables recorded in
//! `EXPERIMENTS.md`, plus Criterion micro-benchmarks (`benches/`).
//!
//! The PODS 2004 paper contains no empirical section (its §5 defers the
//! experimental study), so these experiments (a) mechanically verify every
//! displayed artifact and theorem of the paper and (b) carry out the
//! deferred comparison study against conventional and probabilistic
//! synopses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use wsyn_datagen::{gaussian_bumps, piecewise_constant, zipf, ZipfPlacement};

/// Prints a GitHub-markdown table.
pub fn md_table(headers: &[&str], rows: &[Vec<String>]) {
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Times a closure, returning `(result, milliseconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// The standard one-dimensional experiment workloads (seeded,
/// deterministic). These mirror the data regimes of the companion
/// papers' evaluations: skewed frequency vectors, smooth multi-modal
/// signals, and flat/spiky step signals.
pub fn workloads_1d(n: usize) -> Vec<(&'static str, Vec<f64>)> {
    vec![
        (
            "zipf(1.0)-shuffled",
            zipf(n, 1.0, 100_000.0, ZipfPlacement::Shuffled, 11),
        ),
        (
            "zipf(0.7)-decreasing",
            zipf(n, 0.7, 100_000.0, ZipfPlacement::Decreasing, 11),
        ),
        (
            "gaussian-bumps",
            gaussian_bumps(n, 6, (50.0, 400.0), (0.02, 0.12), 3.0, 7),
        ),
        (
            "piecewise-constant",
            piecewise_constant(n, 12, (1.0, 600.0), 0.0, 13),
        ),
    ]
}

/// Format a float with 4 significant decimals for tables.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
    }
}
