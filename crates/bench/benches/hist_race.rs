//! Wavelet-vs-histogram race: optimal max-error objectives and build
//! times of the `minmax` wavelet DP and the `hist` step-function DP on
//! the three race workloads (zipf / spike / plateau), written to
//! `BENCH_hist.json` at the repo root.
//!
//! Per `(generator, n, budget)` cell the bench records both families'
//! objectives (each a proven guarantee — the run asserts the realized
//! maximum error stays under it) and both build times, plus the winner
//! under the server's `auto` rule (hist only by strict improvement).
//! One shape claim is asserted rather than merely reported: on the
//! plateau workload with at least as many buckets as segments the hist
//! objective is exactly zero at every measured budget. (Spikes are
//! *sparse* in the Haar basis but still cost ~log N coefficients each
//! to pin exactly, so the spike winner genuinely depends on the budget
//! — the bench records it instead of assuming it.)
//!
//! Run with `cargo bench --bench hist_race`.

use wsyn_core::json::{object, Value};
use wsyn_datagen::{piecewise_constant, spikes, zipf, ZipfPlacement};
use wsyn_synopsis::family::{HIST, MINMAX};
use wsyn_synopsis::histogram::HistThresholder;
use wsyn_synopsis::one_dim::MinMaxErr;
use wsyn_synopsis::{AnySynopsis, ErrorMetric, Thresholder};

/// Domain sizes measured.
const SIZES: [usize; 2] = [1 << 10, 1 << 12];
/// Synopsis budgets measured (coefficients for the wavelet family,
/// buckets for the histogram family — the same space knob).
const BUDGETS: [usize; 2] = [8, 32];
/// Plateau segment count: at most `BUDGETS[0]`, so the hist DP must
/// reach objective zero at every measured budget.
const PLATEAU_SEGMENTS: usize = 8;

fn ms_since(t0: std::time::Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

fn generators(n: usize) -> Vec<(&'static str, Vec<f64>)> {
    vec![
        ("zipf", zipf(n, 1.0, 200_000.0, ZipfPlacement::Shuffled, 21)),
        ("spike", spikes(n, 6, (400.0, 900.0), (-5.0, 5.0), 22)),
        (
            "plateau",
            piecewise_constant(n, PLATEAU_SEGMENTS, (1.0, 600.0), 0.0, 23),
        ),
    ]
}

struct Cell {
    generator: &'static str,
    n: usize,
    budget: usize,
    wavelet_objective: f64,
    wavelet_build_ms: f64,
    hist_objective: f64,
    hist_build_ms: f64,
    winner: &'static str,
}

fn race(generator: &'static str, data: &[f64], budget: usize) -> Cell {
    let metric = ErrorMetric::absolute();

    let t0 = std::time::Instant::now();
    let wavelet = MinMaxErr::new(data).expect("power-of-two domain");
    let w = wavelet.run(budget, metric);
    let wavelet_build_ms = ms_since(t0);
    let w_measured = metric.max_error(data, &w.synopsis.reconstruct());
    assert!(
        w_measured <= w.objective + 1e-9 * (1.0 + w.objective.abs()),
        "{generator} n={} b={budget}: wavelet guarantee violated",
        data.len()
    );

    let t0 = std::time::Instant::now();
    let h = HistThresholder::new(data)
        .threshold(budget, metric)
        .expect("hist solve");
    let hist_build_ms = ms_since(t0);
    let AnySynopsis::Histogram(step) = &h.synopsis else {
        panic!("hist must produce a histogram synopsis");
    };
    let h_measured = metric.max_error(data, &step.reconstruct());
    assert!(
        h_measured <= h.objective + 1e-9 * (1.0 + h.objective.abs()),
        "{generator} n={} b={budget}: hist guarantee violated",
        data.len()
    );

    Cell {
        generator,
        n: data.len(),
        budget,
        wavelet_objective: w.objective,
        wavelet_build_ms,
        hist_objective: h.objective,
        hist_build_ms,
        winner: if h.objective < w.objective {
            HIST
        } else {
            MINMAX
        },
    }
}

fn main() {
    let mut cells: Vec<Cell> = Vec::new();
    for n in SIZES {
        for (generator, data) in generators(n) {
            for budget in BUDGETS {
                let cell = race(generator, &data, budget);
                println!(
                    "{generator:<8} n={n:<5} b={budget:<3} wavelet {:>12.4} ({:.2} ms)  hist {:>12.4} ({:.2} ms)  winner={}",
                    cell.wavelet_objective,
                    cell.wavelet_build_ms,
                    cell.hist_objective,
                    cell.hist_build_ms,
                    cell.winner
                );
                cells.push(cell);
            }
        }
    }

    // Shape claims the race rides on.
    for cell in &cells {
        if cell.generator == "plateau" {
            assert_eq!(
                cell.hist_objective, 0.0,
                "plateau n={} b={}: {PLATEAU_SEGMENTS} segments must fit exactly",
                cell.n, cell.budget
            );
        }
    }

    let rows: Vec<Value> = cells
        .iter()
        .map(|c| {
            object(vec![
                ("generator", Value::String(c.generator.to_string())),
                ("n", Value::Number(c.n as f64)),
                ("budget", Value::Number(c.budget as f64)),
                ("wavelet_objective", Value::Number(c.wavelet_objective)),
                ("wavelet_build_ms", Value::Number(c.wavelet_build_ms)),
                ("hist_objective", Value::Number(c.hist_objective)),
                ("hist_build_ms", Value::Number(c.hist_build_ms)),
                ("winner", Value::String(c.winner.to_string())),
            ])
        })
        .collect();
    let doc = object(vec![
        ("bench", Value::String("hist_race".into())),
        ("metric", Value::String("abs".into())),
        (
            "budgets",
            Value::Array(BUDGETS.iter().map(|&b| Value::Number(b as f64)).collect()),
        ),
        ("cells", Value::Array(rows)),
    ]);
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has two ancestors")
        .to_path_buf();
    let out = root.join("BENCH_hist.json");
    std::fs::write(&out, doc.pretty() + "\n").expect("write BENCH_hist.json");
    println!("wrote {}", out.display());
}
