//! Criterion micro-benchmarks for the one-dimensional `MinMaxErr` DP:
//! the `N` and `B` scaling of Theorem 3.1 and the engine/split ablations
//! (companion to experiment E5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsyn_datagen::{zipf, ZipfPlacement};
use wsyn_synopsis::one_dim::{Config, Engine, MinMaxErr, SplitSearch};
use wsyn_synopsis::ErrorMetric;

fn bench_n_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("minmaxerr_n_scaling_b8");
    group.sample_size(10);
    for n in [64usize, 128, 256] {
        let data = zipf(n, 1.0, 100_000.0, ZipfPlacement::Shuffled, 5);
        let solver = MinMaxErr::new(&data).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| solver.run(8, ErrorMetric::relative(1.0)));
        });
    }
    group.finish();
}

fn bench_b_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("minmaxerr_b_scaling_n128");
    group.sample_size(10);
    let data = zipf(128, 1.0, 100_000.0, ZipfPlacement::Shuffled, 5);
    let solver = MinMaxErr::new(&data).unwrap();
    for b in [4usize, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(b), &b, |bch, &b| {
            bch.iter(|| solver.run(b, ErrorMetric::relative(1.0)));
        });
    }
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("minmaxerr_engine_ablation_n64_b8");
    group.sample_size(10);
    let data = zipf(64, 1.0, 100_000.0, ZipfPlacement::Shuffled, 5);
    let solver = MinMaxErr::new(&data).unwrap();
    for engine in [Engine::Dedup, Engine::SubsetMask, Engine::BottomUp] {
        group.bench_function(format!("{engine:?}"), |bch| {
            bch.iter(|| {
                solver.run_with(
                    8,
                    ErrorMetric::relative(1.0),
                    Config {
                        engine,
                        split: SplitSearch::Binary,
                    },
                )
            });
        });
    }
    group.finish();
}

fn bench_split_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("minmaxerr_split_ablation_n128_b16");
    group.sample_size(10);
    let data = zipf(128, 1.0, 100_000.0, ZipfPlacement::Shuffled, 5);
    let solver = MinMaxErr::new(&data).unwrap();
    for split in [SplitSearch::Binary, SplitSearch::Linear] {
        group.bench_function(format!("{split:?}"), |bch| {
            bch.iter(|| {
                solver.run_with(
                    16,
                    ErrorMetric::relative(1.0),
                    Config {
                        engine: Engine::Dedup,
                        split,
                    },
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_n_scaling,
    bench_b_scaling,
    bench_engines,
    bench_split_search
);
criterion_main!(benches);
