//! DP-kernel benchmark: quantifies what the branch-and-bound iterative
//! kernel with cross-run memo reuse buys over the previous PR's recursive
//! cold-per-budget kernel on the E5 scaling workload. Results land in
//! `BENCH_dp_kernel.json` at the repo root so the perf trajectory
//! accumulates across PRs.
//!
//! Five comparisons:
//!
//! 1. **headline** — a descending B-sweep answered by one warm
//!    `DedupWorkspace` with pruning, vs. the same sweep answered by the
//!    embedded copy of the previous recursive kernel with a fresh memo
//!    per budget (the acceptance gate requires ≥ 1.5× here);
//! 2. **pruning** — cold `Dedup` (branch-and-bound) vs. cold
//!    `DedupExhaustive` (same iterative kernel, pruning disabled),
//!    including state and leaf-evaluation counts;
//! 3. **warm vs cold** — the same pruned kernel with and without memo
//!    reuse across the sweep;
//! 4. **identity** — the E4 harness shape (seeded integer instances,
//!    N ≤ 16, all budgets, both metrics): the pruned warm kernel must be
//!    **bitwise** identical — objective bits and retained coefficient
//!    set — to the fresh unpruned `SubsetMask` and `BottomUp` engines;
//! 5. **observability** — the same cold sweep through raw `run_with`,
//!    `Thresholder::threshold_with` with the no-op collector, and with a
//!    live recording collector: both trait paths must stay within 5% of
//!    the raw kernel (collection hooks sit at phase boundaries only).
//!
//! Setting `WSYN_BENCH_SKIP_HEADLINE_GATE` skips the 1.5× headline
//! assertion (comparison 1) for heavily loaded or throttled hosts where
//! interleaved wall-clock ratios are unreliable; every bit-identity
//! check and the observability gates still run.
//!
//! Run with `cargo bench --bench dp_kernel`. Numbers are medians of
//! several interleaved runs; the JSON records `host_cpus` and the sweep
//! modes the E6/E7 binaries would pick on this host, because single-core
//! containers are exactly where the sequential warm path replaces the
//! thread-per-budget one.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsyn_core::json::{object, Value};
use wsyn_datagen::{zipf, ZipfPlacement};
use wsyn_haar::ErrorTree1d;
use wsyn_obs::Collector;
use wsyn_synopsis::one_dim::{Config, DedupWorkspace, Engine, MinMaxErr, SplitSearch};
use wsyn_synopsis::thresholder::RunParams;
use wsyn_synopsis::{ErrorMetric, Thresholder};

/// A structural copy of the previous PR's dedup kernel: recursive
/// descent, `StateTable` memo keyed on `(node, budget, error-bits)`,
/// binary-search budget splits, **no pruning and no memo reuse** — a
/// fresh solver per budget. This is the baseline the branch-and-bound
/// iterative kernel is measured against.
mod baseline {
    use wsyn_core::{pack_state_1d, StateTable};
    use wsyn_haar::ErrorTree1d;

    #[derive(Clone, Copy)]
    struct Entry {
        value: f64,
        #[allow(dead_code)] // the real kernel stores traceback decisions too
        left_allot: u32,
        #[allow(dead_code)]
        keep: bool,
    }

    pub struct Solver<'a> {
        tree: &'a ErrorTree1d,
        denom: &'a [f64],
        n: usize,
        memo: StateTable<Entry>,
    }

    impl<'a> Solver<'a> {
        pub fn new(tree: &'a ErrorTree1d, denom: &'a [f64]) -> Self {
            Self {
                tree,
                denom,
                n: tree.n(),
                memo: StateTable::new(),
            }
        }

        pub fn solve(&mut self, id: usize, b: usize, e: f64) -> f64 {
            if id >= self.n {
                return e.abs() / self.denom[id - self.n];
            }
            let key = pack_state_1d(id as u32, b as u32, e.to_bits());
            if let Some(entry) = self.memo.get(key) {
                return entry.value;
            }
            let c = self.tree.coeff(id);
            let entry = if id == 0 {
                let child = if self.n == 1 { self.n } else { 1 };
                let drop_val = self.solve(child, b, e + c);
                let keep_val = if b >= 1 && c != 0.0 {
                    self.solve(child, b - 1, e)
                } else {
                    f64::INFINITY
                };
                if keep_val <= drop_val {
                    Entry {
                        value: keep_val,
                        keep: true,
                        left_allot: (b - 1) as u32,
                    }
                } else {
                    Entry {
                        value: drop_val,
                        keep: false,
                        left_allot: b as u32,
                    }
                }
            } else {
                let (lc, rc) = (2 * id, 2 * id + 1);
                let (drop_val, drop_b) = self.best_split(
                    b,
                    |s, bp| s.solve(lc, bp, e + c),
                    |s, bp| s.solve(rc, b - bp, e - c),
                );
                let (keep_val, keep_b) = if b >= 1 && c != 0.0 {
                    self.best_split(
                        b - 1,
                        |s, bp| s.solve(lc, bp, e),
                        |s, bp| s.solve(rc, b - 1 - bp, e),
                    )
                } else {
                    (f64::INFINITY, 0)
                };
                if keep_val <= drop_val {
                    Entry {
                        value: keep_val,
                        keep: true,
                        left_allot: keep_b as u32,
                    }
                } else {
                    Entry {
                        value: drop_val,
                        keep: false,
                        left_allot: drop_b as u32,
                    }
                }
            };
            self.memo.insert(key, entry);
            entry.value
        }

        fn best_split(
            &mut self,
            budget: usize,
            f: impl Fn(&mut Self, usize) -> f64 + Copy,
            g: impl Fn(&mut Self, usize) -> f64 + Copy,
        ) -> (f64, usize) {
            let (mut lo, mut hi) = (0usize, budget);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if f(self, mid) <= g(self, mid) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            let mut best = (f64::INFINITY, 0usize);
            for bp in [lo, lo.saturating_sub(1)] {
                let v = f(self, bp).max(g(self, bp));
                if v < best.0 {
                    best = (v, bp);
                }
            }
            best
        }
    }
}

/// Wall-clock milliseconds of one run of `f`.
fn time_ms(mut f: impl FnMut()) -> f64 {
    let t0 = std::time::Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e3
}

fn median(times: &mut [f64]) -> f64 {
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Times two alternatives interleaved — A, B, A, B, … — so slow drift in
/// background load hits both paths equally, and reports
/// `(median A ms, median B ms, median per-rep A/B ratio)`.
fn compare_ms(reps: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64, f64) {
    let mut a_times = Vec::with_capacity(reps);
    let mut b_times = Vec::with_capacity(reps);
    for _ in 0..reps {
        a_times.push(time_ms(&mut a));
        b_times.push(time_ms(&mut b));
    }
    let mut ratios: Vec<f64> = a_times.iter().zip(&b_times).map(|(&x, &y)| x / y).collect();
    (
        median(&mut a_times),
        median(&mut b_times),
        median(&mut ratios),
    )
}

fn main() {
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let reps = 5usize;

    // ── Workload: the E5 scaling instance, descending B-sweep ─────────
    let n = 1024usize;
    let budgets = [64usize, 56, 48, 40, 32, 24, 16, 8];
    let data = zipf(n, 1.0, 100_000.0, ZipfPlacement::Shuffled, 5);
    let sanity = 1.0;
    let metric = ErrorMetric::relative(sanity);
    let tree = ErrorTree1d::from_data(&data).unwrap();
    let denom: Vec<f64> = data.iter().map(|&v| v.abs().max(sanity)).collect();
    let solver = MinMaxErr::new(&data).unwrap();

    // Correctness gate before timing anything: the warm pruned kernel is
    // bit-identical to the recursive baseline at every budget of the sweep.
    {
        let mut ws = DedupWorkspace::new();
        for &b in &budgets {
            let warm = solver.run_warm(b, metric, SplitSearch::Binary, &mut ws);
            let base = baseline::Solver::new(&tree, &denom).solve(0, b, 0.0);
            assert!(
                warm.objective.to_bits() == base.to_bits(),
                "kernel diverged from baseline at b={b}: {} vs {base}",
                warm.objective
            );
        }
    }

    // ── 1. Headline: warm pruned sweep vs cold recursive baseline ─────
    let (baseline_ms, warm_ms, headline_speedup) = compare_ms(
        reps,
        || {
            for &b in &budgets {
                let mut s = baseline::Solver::new(&tree, &denom);
                std::hint::black_box(s.solve(0, b, 0.0));
            }
        },
        || {
            let mut ws = DedupWorkspace::new();
            for &b in &budgets {
                std::hint::black_box(
                    solver
                        .run_warm(b, metric, SplitSearch::Binary, &mut ws)
                        .objective,
                );
            }
        },
    );
    println!("headline B-sweep (E5, N = {n}, B = {budgets:?}):");
    println!("  recursive cold-per-budget : {baseline_ms:.2} ms");
    println!("  B&B + warm workspace      : {warm_ms:.2} ms  ({headline_speedup:.2}x)");
    if std::env::var_os("WSYN_BENCH_SKIP_HEADLINE_GATE").is_none() {
        assert!(
            headline_speedup >= 1.5,
            "acceptance gate: need >= 1.5x over the recursive baseline, got {headline_speedup:.2}x"
        );
    }

    // ── 2. Pruned vs unpruned, cold, largest budget ───────────────────
    let b_top = budgets[0];
    let pruned = solver.run_with(b_top, metric, Config::default());
    let exhaustive = solver.run_with(
        b_top,
        metric,
        Config {
            engine: Engine::DedupExhaustive,
            ..Config::default()
        },
    );
    assert!(
        pruned.objective.to_bits() == exhaustive.objective.to_bits(),
        "pruning changed the objective"
    );
    let (exhaustive_ms, pruned_ms, prune_speedup) = compare_ms(
        reps,
        || {
            std::hint::black_box(
                solver
                    .run_with(
                        b_top,
                        metric,
                        Config {
                            engine: Engine::DedupExhaustive,
                            ..Config::default()
                        },
                    )
                    .objective,
            );
        },
        || {
            std::hint::black_box(solver.run_with(b_top, metric, Config::default()).objective);
        },
    );
    println!("pruning (cold, B = {b_top}):");
    println!(
        "  exhaustive : {exhaustive_ms:.2} ms  ({} states, {} leaf evals)",
        exhaustive.stats.states, exhaustive.stats.leaf_evals
    );
    println!(
        "  pruned     : {pruned_ms:.2} ms  ({} states, {} leaf evals)  ({prune_speedup:.2}x)",
        pruned.stats.states, pruned.stats.leaf_evals
    );

    // ── 3. Warm vs cold, same pruned kernel, same sweep ───────────────
    let (cold_ms, warm_sweep_ms, warm_speedup) = compare_ms(
        reps,
        || {
            for &b in &budgets {
                std::hint::black_box(solver.run(b, metric).objective);
            }
        },
        || {
            let mut ws = DedupWorkspace::new();
            for &b in &budgets {
                std::hint::black_box(
                    solver
                        .run_warm(b, metric, SplitSearch::Binary, &mut ws)
                        .objective,
                );
            }
        },
    );
    println!("memo reuse (pruned kernel, same sweep):");
    println!("  cold per budget : {cold_ms:.2} ms");
    println!("  warm workspace  : {warm_sweep_ms:.2} ms  ({warm_speedup:.2}x)");

    // ── 4. Identity harness: bitwise agreement on E4-shaped instances ─
    let mut rng = StdRng::seed_from_u64(2004);
    let mut identity_checks = 0usize;
    for small_n in [4usize, 8, 16] {
        for metric in [ErrorMetric::absolute(), ErrorMetric::relative(1.0)] {
            for _ in 0..10 {
                let data: Vec<f64> = (0..small_n)
                    .map(|_| f64::from(rng.gen_range(-20i32..=20)))
                    .collect();
                let s = MinMaxErr::new(&data).unwrap();
                let mut ws = DedupWorkspace::new();
                for b in (0..=small_n).rev() {
                    let warm = s.run_warm(b, metric, SplitSearch::Binary, &mut ws);
                    for engine in [Engine::SubsetMask, Engine::BottomUp] {
                        let r = s.run_with(
                            b,
                            metric,
                            Config {
                                engine,
                                split: SplitSearch::Binary,
                            },
                        );
                        assert!(
                            warm.objective.to_bits() == r.objective.to_bits()
                                && warm.synopsis.indices() == r.synopsis.indices(),
                            "identity violated: n={small_n} b={b} {engine:?}"
                        );
                        identity_checks += 1;
                    }
                }
            }
        }
    }
    println!("identity harness: {identity_checks} bitwise engine agreements  ✓");

    // ── 5. Observability overhead: the redesigned trait + collection ──
    // The same cold B-sweep three ways: raw `run_with` (no trait, no
    // collector), `threshold_with` carrying the no-op collector, and
    // `threshold_with` carrying a live recording collector. Collection
    // hooks sit at phase boundaries only, so both trait paths must stay
    // within 5% of the raw kernel (the no-op one within measurement
    // noise of it).
    let direct_sweep = || {
        for &b in &budgets {
            std::hint::black_box(solver.run(b, metric).objective);
        }
    };
    let sweep_with = |obs: &Collector| {
        for &b in &budgets {
            let params = RunParams::new(b, metric).obs(obs.clone());
            std::hint::black_box(solver.threshold_with(&params).unwrap().objective);
        }
    };
    let (noop_ms, direct_ms, noop_ratio) =
        compare_ms(reps, || sweep_with(&Collector::noop()), direct_sweep);
    let (recording_ms, _, recording_ratio) =
        compare_ms(reps, || sweep_with(&Collector::recording()), direct_sweep);
    println!("observability overhead (cold sweep, trait dispatch + collection):");
    println!("  raw run_with          : {direct_ms:.2} ms");
    println!("  threshold_with (noop) : {noop_ms:.2} ms  ({noop_ratio:.3}x)");
    println!("  threshold_with (rec)  : {recording_ms:.2} ms  ({recording_ratio:.3}x)");
    assert!(
        noop_ratio <= 1.05,
        "acceptance gate: no-op collection must be free, got {noop_ratio:.3}x over raw"
    );
    assert!(
        recording_ratio <= 1.05,
        "acceptance gate: live collection must cost <= 5%, got {recording_ratio:.3}x over raw"
    );

    let mode = if host_cpus > 1 {
        "parallel budget rows"
    } else {
        "sequential warm-workspace"
    };
    let doc = object(vec![
        ("bench", Value::String("dp_kernel".into())),
        ("host_cpus", Value::Number(host_cpus as f64)),
        ("sweep_mode", Value::String(mode.into())),
        ("reps", Value::Number(reps as f64)),
        (
            "headline_b_sweep",
            object(vec![
                ("workload", Value::String("E5 zipf(1.0)-shuffled".into())),
                ("n", Value::Number(n as f64)),
                (
                    "budgets",
                    Value::Array(budgets.iter().map(|&b| Value::Number(b as f64)).collect()),
                ),
                ("recursive_cold_ms", Value::Number(baseline_ms)),
                ("bnb_warm_ms", Value::Number(warm_ms)),
                ("speedup", Value::Number(headline_speedup)),
            ]),
        ),
        (
            "pruning",
            object(vec![
                ("b", Value::Number(b_top as f64)),
                ("exhaustive_ms", Value::Number(exhaustive_ms)),
                ("pruned_ms", Value::Number(pruned_ms)),
                ("speedup", Value::Number(prune_speedup)),
                (
                    "exhaustive_states",
                    Value::Number(exhaustive.stats.states as f64),
                ),
                ("pruned_states", Value::Number(pruned.stats.states as f64)),
                (
                    "exhaustive_leaf_evals",
                    Value::Number(exhaustive.stats.leaf_evals as f64),
                ),
                (
                    "pruned_leaf_evals",
                    Value::Number(pruned.stats.leaf_evals as f64),
                ),
            ]),
        ),
        (
            "memo_reuse",
            object(vec![
                ("cold_ms", Value::Number(cold_ms)),
                ("warm_ms", Value::Number(warm_sweep_ms)),
                ("speedup", Value::Number(warm_speedup)),
            ]),
        ),
        ("identity_checks", Value::Number(identity_checks as f64)),
        (
            "observability",
            object(vec![
                ("direct_ms", Value::Number(direct_ms)),
                ("noop_ms", Value::Number(noop_ms)),
                ("recording_ms", Value::Number(recording_ms)),
                ("noop_ratio", Value::Number(noop_ratio)),
                ("recording_ratio", Value::Number(recording_ratio)),
            ]),
        ),
    ]);
    // The bench usually runs from the workspace root under `cargo bench`;
    // resolve the root from the manifest dir so any cwd works.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has two ancestors")
        .to_path_buf();
    let out = root.join("BENCH_dp_kernel.json");
    std::fs::write(&out, doc.pretty() + "\n").expect("write BENCH_dp_kernel.json");
    println!("wrote {}", out.display());
}
