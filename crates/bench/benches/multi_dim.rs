//! Criterion micro-benchmarks for the multi-dimensional approximation
//! schemes (Theorems 3.2 and 3.4): ε sweeps (the `1/ε` runtime factor) and
//! the comparison against the pseudo-polynomial exact DP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsyn_datagen::{cube_bumps, quantize_to_i64};
use wsyn_haar::nd::{NdArray, NdShape};
use wsyn_synopsis::multi_dim::additive::AdditiveScheme;
use wsyn_synopsis::multi_dim::integer::IntegerExact;
use wsyn_synopsis::multi_dim::oneplus::OnePlusEps;
use wsyn_synopsis::ErrorMetric;

fn fixture_2d(side: usize) -> (NdShape, Vec<i64>, Vec<f64>) {
    let shape = NdShape::hypercube(side, 2).unwrap();
    let data = quantize_to_i64(&cube_bumps(side, 2, 3, (80.0, 300.0), 10.0, 17));
    let data_f: Vec<f64> = data.iter().map(|&v| v as f64).collect();
    (shape, data, data_f)
}

fn bench_additive_eps(c: &mut Criterion) {
    let mut group = c.benchmark_group("additive_eps_sweep_8x8_b8");
    group.sample_size(10);
    let (shape, _, data_f) = fixture_2d(8);
    let arr = NdArray::new(shape, data_f).unwrap();
    let scheme = AdditiveScheme::new(&arr).unwrap();
    for eps in [1.0f64, 0.5, 0.25, 0.1] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |bch, &eps| {
            bch.iter(|| scheme.run(8, ErrorMetric::absolute(), eps));
        });
    }
    group.finish();
}

fn bench_oneplus_eps(c: &mut Criterion) {
    let mut group = c.benchmark_group("oneplus_eps_sweep_8x8_b8");
    group.sample_size(10);
    let (shape, data, _) = fixture_2d(8);
    let scheme = OnePlusEps::new(&shape, &data).unwrap();
    for eps in [1.0f64, 0.5, 0.25] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |bch, &eps| {
            bch.iter(|| scheme.run(8, eps));
        });
    }
    group.finish();
}

fn bench_exact_vs_approx(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_vs_approx_8x8_b8");
    group.sample_size(10);
    let (shape, data, data_f) = fixture_2d(8);
    let exact = IntegerExact::new(&shape, &data).unwrap();
    group.bench_function("pseudo_poly_exact", |bch| {
        bch.iter(|| exact.run(8));
    });
    let arr = NdArray::new(shape.clone(), data_f).unwrap();
    let additive = AdditiveScheme::new(&arr).unwrap();
    group.bench_function("additive_eps0.25", |bch| {
        bch.iter(|| additive.run(8, ErrorMetric::absolute(), 0.25));
    });
    let oneplus = OnePlusEps::new(&shape, &data).unwrap();
    group.bench_function("oneplus_eps0.25", |bch| {
        bch.iter(|| oneplus.run(8, 0.25));
    });
    group.finish();
}

fn bench_dims(c: &mut Criterion) {
    let mut group = c.benchmark_group("additive_dimensionality_b8");
    group.sample_size(10);
    for (side, d) in [(64usize, 1usize), (8, 2), (4, 3)] {
        let shape = NdShape::hypercube(side, d).unwrap();
        let data: Vec<f64> = cube_bumps(side, d, 3, (80.0, 300.0), 10.0, 17);
        let arr = NdArray::new(shape, data).unwrap();
        let scheme = AdditiveScheme::new(&arr).unwrap();
        group.bench_function(format!("{side}^{d}"), |bch| {
            bch.iter(|| scheme.run(8, ErrorMetric::absolute(), 0.25));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_additive_eps,
    bench_oneplus_eps,
    bench_exact_vs_approx,
    bench_dims
);
criterion_main!(benches);
