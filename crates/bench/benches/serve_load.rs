//! `wsyn-serve` load generator: loopback throughput and latency at 1, 2
//! and 4 shard worker threads, written to `BENCH_serve.json` at the repo
//! root.
//!
//! The workload is a fixed deterministic script — eight zipf columns,
//! a build per column, a mixed point/sum/avg query phase, a batched
//! update phase, then a flush (applies pending updates, with any
//! triggered rebuilds) and a warm re-build per column — driven by four
//! persistent client connections regardless of the server's shard
//! count, so the measured deltas isolate server-side parallelism.
//! Reported per shard count: queries/sec with p50/p99 request latency,
//! update throughput (64-update batches), flush latency, and warm
//! rebuild (re-build) latency.
//!
//! Identity guard: every query's estimate bits are collected per client
//! and must be identical across shard counts — the load generator
//! doubles as a concurrency-identity stress (answers may never depend
//! on how many workers raced to produce them).
//!
//! Run with `cargo bench --bench serve_load`.

use wsyn_core::json::{object, Value};
use wsyn_datagen::{zipf, ZipfPlacement};
use wsyn_serve::{Client, QueryKind, ServeConfig, Server};

/// Columns served (spread over shards by name hash).
const COLUMNS: usize = 8;
/// Values per column.
const N: usize = 256;
/// Coefficient budget per build.
const BUDGET: usize = 16;
/// Metric spec for every build.
const METRIC: &str = "abs";
/// Persistent client connections (fixed across shard counts).
const CLIENTS: usize = 4;
/// Queries per client in the query phase.
const QUERIES_PER_CLIENT: usize = 600;
/// Update batches per client.
const BATCHES_PER_CLIENT: usize = 30;
/// Updates per batch.
const BATCH_SIZE: usize = 64;

fn column_name(c: usize) -> String {
    format!("load/col{c}")
}

fn column_data(c: usize) -> Vec<f64> {
    zipf(N, 1.1, 100_000.0, ZipfPlacement::Shuffled, 40 + c as u64)
}

/// The deterministic query mix for client `client`, request `k`:
/// round-robin over the client's own columns, cycling point → sum → avg
/// with index arithmetic instead of randomness.
fn query_plan(client: usize, k: usize) -> (usize, QueryKind) {
    let own: Vec<usize> = (0..COLUMNS).filter(|c| c % CLIENTS == client).collect();
    let col = own[k % own.len()];
    let kind = match k % 3 {
        0 => QueryKind::Point((k * 37 + client * 11) % N),
        1 => {
            let lo = (k * 13) % (N / 2);
            QueryKind::RangeSum(lo, lo + N / 4)
        }
        _ => {
            let lo = (k * 7) % (N / 2);
            QueryKind::RangeAvg(lo, lo + N / 2)
        }
    };
    (col, kind)
}

/// The update batch for client `client`, batch `b`: strided indices
/// with deltas big enough that the accumulated drift breaches the
/// rebuild tolerance partway through a column's pending queue — so the
/// flush phase measures real drain-triggered rebuilds, not just
/// tree updates.
fn update_plan(client: usize, b: usize) -> (usize, Vec<(usize, f64)>) {
    let own: Vec<usize> = (0..COLUMNS).filter(|c| c % CLIENTS == client).collect();
    let col = own[b % own.len()];
    let updates = (0..BATCH_SIZE)
        .map(|j| {
            let i = (b * 29 + j * 17 + client * 5) % N;
            let delta = (f64::from(((b + j) % 5) as u32) - 2.0) * 25.0;
            (i, delta)
        })
        .collect();
    (col, updates)
}

fn ms_since(t0: std::time::Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

struct PhaseStats {
    total: usize,
    wall_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
}

impl PhaseStats {
    fn from_latencies(mut latencies: Vec<f64>, wall_ms: f64) -> PhaseStats {
        latencies.sort_by(f64::total_cmp);
        PhaseStats {
            total: latencies.len(),
            wall_ms,
            p50_ms: percentile(&latencies, 0.50),
            p99_ms: percentile(&latencies, 0.99),
        }
    }

    fn per_sec(&self, items_per_request: usize) -> f64 {
        (self.total * items_per_request) as f64 / (self.wall_ms / 1e3)
    }

    fn json(&self, rate_label: &str, items_per_request: usize) -> Value {
        object(vec![
            ("requests", Value::Number(self.total as f64)),
            ("wall_ms", Value::Number(self.wall_ms)),
            (rate_label, Value::Number(self.per_sec(items_per_request))),
            ("p50_ms", Value::Number(self.p50_ms)),
            ("p99_ms", Value::Number(self.p99_ms)),
        ])
    }
}

/// Merges per-client `(latencies, answer-bits)` results; wall time is
/// the slowest client's (the phase ends when the last client finishes).
fn run_clients<F>(addr: &str, f: F) -> (PhaseStats, Vec<u64>)
where
    F: Fn(usize, &mut Client) -> (Vec<f64>, Vec<u64>) + Copy + Send + 'static,
{
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("client connect");
                f(c, &mut client)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut bits = Vec::new();
    for handle in handles {
        let (lat, b) = handle.join().expect("client thread");
        latencies.extend(lat);
        bits.extend(b);
    }
    let wall = ms_since(t0);
    (PhaseStats::from_latencies(latencies, wall), bits)
}

/// One full load run against a `shards`-worker server. Returns the JSON
/// row and the concatenated per-client answer bits for the identity
/// guard.
fn run_load(shards: usize) -> (Value, Vec<u64>) {
    let config = ServeConfig {
        shards,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", &config).expect("bind");
    let addr = server.local_addr().to_string();
    let running = std::thread::spawn(move || server.run());

    // ── Setup: put + build every column (not timed into any phase) ───
    let mut setup = Client::connect(&addr).expect("setup client");
    for c in 0..COLUMNS {
        setup.put(&column_name(c), &column_data(c)).expect("put");
        setup
            .build(&column_name(c), BUDGET, METRIC, false)
            .expect("build");
    }

    // ── Query phase ──────────────────────────────────────────────────
    let (query_stats, query_bits) = run_clients(&addr, |client, conn| {
        let mut latencies = Vec::with_capacity(QUERIES_PER_CLIENT);
        let mut bits = Vec::with_capacity(QUERIES_PER_CLIENT);
        for k in 0..QUERIES_PER_CLIENT {
            let (col, kind) = query_plan(client, k);
            let t0 = std::time::Instant::now();
            let answer = conn.query(&column_name(col), kind, false).expect("query");
            latencies.push(ms_since(t0));
            let est = answer.get("est").and_then(Value::as_f64).expect("estimate");
            bits.push(est.to_bits());
        }
        (latencies, bits)
    });

    // ── Batched update phase (cheap acks; application is deferred) ───
    let (update_stats, _) = run_clients(&addr, |client, conn| {
        let mut latencies = Vec::with_capacity(BATCHES_PER_CLIENT);
        for b in 0..BATCHES_PER_CLIENT {
            let (col, updates) = update_plan(client, b);
            let t0 = std::time::Instant::now();
            conn.update(&column_name(col), &updates).expect("update");
            latencies.push(ms_since(t0));
        }
        (latencies, Vec::new())
    });

    // ── Flush (drain + triggered rebuilds) and warm re-build ─────────
    let mut flush_ms = Vec::new();
    let mut rebuild_ms = Vec::new();
    let mut rebuilds_total = 0u64;
    for c in 0..COLUMNS {
        let t0 = std::time::Instant::now();
        let flushed = setup.flush(&column_name(c)).expect("flush");
        flush_ms.push(ms_since(t0));
        rebuilds_total += flushed
            .get("rebuilds")
            .and_then(Value::as_f64)
            .map_or(0, |r| r as u64);
        let t0 = std::time::Instant::now();
        setup
            .build(&column_name(c), BUDGET, METRIC, false)
            .expect("re-build");
        rebuild_ms.push(ms_since(t0));
    }
    flush_ms.sort_by(f64::total_cmp);
    rebuild_ms.sort_by(f64::total_cmp);

    setup.shutdown().expect("shutdown");
    running.join().expect("server thread").expect("server run");

    let row = object(vec![
        ("workers", Value::Number(shards as f64)),
        ("queries", query_stats.json("queries_per_sec", 1)),
        ("updates", update_stats.json("updates_per_sec", BATCH_SIZE)),
        (
            "flush",
            object(vec![
                ("requests", Value::Number(flush_ms.len() as f64)),
                ("p50_ms", Value::Number(percentile(&flush_ms, 0.50))),
                ("max_ms", Value::Number(percentile(&flush_ms, 1.0))),
                ("rebuilds_triggered", Value::Number(rebuilds_total as f64)),
            ]),
        ),
        (
            "rebuild",
            object(vec![
                ("requests", Value::Number(rebuild_ms.len() as f64)),
                ("p50_ms", Value::Number(percentile(&rebuild_ms, 0.50))),
                ("max_ms", Value::Number(percentile(&rebuild_ms, 1.0))),
            ]),
        ),
    ]);
    (row, query_bits)
}

fn main() {
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut rows = Vec::new();
    let mut reference_bits: Option<Vec<u64>> = None;
    for shards in [1usize, 2, 4] {
        let (row, bits) = run_load(shards);
        // Per-client request order is fixed, so sorted answer bits must
        // be identical no matter how many workers raced.
        let mut sorted = bits;
        sorted.sort_unstable();
        match &reference_bits {
            None => reference_bits = Some(sorted),
            Some(reference) => assert_eq!(
                reference, &sorted,
                "query answers changed between shard counts"
            ),
        }
        println!("workers = {shards}: {}", row.compact());
        rows.push(row);
    }

    let doc = object(vec![
        ("bench", Value::String("serve_load".into())),
        ("host_cpus", Value::Number(host_cpus as f64)),
        ("columns", Value::Number(COLUMNS as f64)),
        ("n", Value::Number(N as f64)),
        ("budget", Value::Number(BUDGET as f64)),
        ("metric", Value::String(METRIC.into())),
        ("clients", Value::Number(CLIENTS as f64)),
        ("workers", Value::Array(rows)),
    ]);
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has two ancestors")
        .to_path_buf();
    let out = root.join("BENCH_serve.json");
    std::fs::write(&out, doc.pretty() + "\n").expect("write BENCH_serve.json");
    println!("wrote {}", out.display());
}
