//! DP-substrate benchmark: quantifies what the shared `StateTable` memo
//! buys over the seed's `std::collections::HashMap` (SipHash, tuple keys)
//! on the E5 scaling workload, and what the parallel τ-sweep buys over the
//! sequential one on a 2-D cube. Results land in `BENCH_dp_core.json` at
//! the repo root so the perf trajectory accumulates across PRs.
//!
//! Run with `cargo bench --bench dp_substrate`. Numbers are medians of
//! several full runs; the JSON records `host_cpus` because the τ-sweep
//! speedup is bounded by the cores actually available (on a single-core
//! host the parallel sweep can only match the sequential one, minus
//! spawn overhead).

use std::collections::HashMap;

use wsyn_core::json::{object, Value};
use wsyn_core::StateTable;
use wsyn_datagen::{zipf, ZipfPlacement};
use wsyn_haar::nd::NdShape;
use wsyn_haar::ErrorTree1d;
use wsyn_synopsis::multi_dim::oneplus::OnePlusEps;
use wsyn_synopsis::one_dim::MinMaxErr;
use wsyn_synopsis::ErrorMetric;

/// A verbatim private copy of the *seed* dedup engine, generic over its
/// memo so the benchmark compares the old memo layout (SipHash `HashMap`,
/// tuple keys) against the current `StateTable` with everything else —
/// recursion, entries, budget splits — held identical. Only the memo
/// differs between the two timed paths.
mod seed_dedup {
    use super::HashMap;
    use wsyn_core::{pack_state_1d, StateTable};
    use wsyn_haar::ErrorTree1d;

    #[derive(Clone, Copy)]
    pub struct Entry {
        value: f64,
        #[allow(dead_code)] // the seed stores its traceback decisions too
        left_allot: u32,
        #[allow(dead_code)]
        keep: bool,
    }

    /// The memo interface the seed solver needs: keyed lookup + insert.
    pub trait Memo {
        fn get(&self, key: (u32, u32, u64)) -> Option<Entry>;
        fn insert(&mut self, key: (u32, u32, u64), entry: Entry);
        fn len(&self) -> usize;
    }

    impl Memo for HashMap<(u32, u32, u64), Entry> {
        fn get(&self, key: (u32, u32, u64)) -> Option<Entry> {
            HashMap::get(self, &key).copied()
        }
        fn insert(&mut self, key: (u32, u32, u64), entry: Entry) {
            HashMap::insert(self, key, entry);
        }
        fn len(&self) -> usize {
            HashMap::len(self)
        }
    }

    impl Memo for StateTable<Entry> {
        fn get(&self, key: (u32, u32, u64)) -> Option<Entry> {
            StateTable::get(self, pack_state_1d(key.0, key.1, key.2)).copied()
        }
        fn insert(&mut self, key: (u32, u32, u64), entry: Entry) {
            StateTable::insert(self, pack_state_1d(key.0, key.1, key.2), entry);
        }
        fn len(&self) -> usize {
            StateTable::len(self)
        }
    }

    pub struct Solver<'a, M: Memo> {
        tree: &'a ErrorTree1d,
        denom: Vec<f64>,
        n: usize,
        memo: M,
    }

    impl<'a, M: Memo> Solver<'a, M> {
        pub fn new(tree: &'a ErrorTree1d, data: &[f64], sanity: f64, memo: M) -> Self {
            Self {
                tree,
                denom: data.iter().map(|&v| v.abs().max(sanity)).collect(),
                n: tree.n(),
                memo,
            }
        }

        pub fn states(&self) -> usize {
            self.memo.len()
        }

        pub fn solve(&mut self, id: usize, b: usize, e: f64) -> f64 {
            if id >= self.n {
                return e.abs() / self.denom[id - self.n];
            }
            let key = (id as u32, b as u32, e.to_bits());
            if let Some(entry) = self.memo.get(key) {
                return entry.value;
            }
            let c = self.tree.coeff(id);
            let entry = if id == 0 {
                let child = if self.n == 1 { self.n } else { 1 };
                let drop_val = self.solve(child, b, e + c);
                let keep_val = if b >= 1 && c != 0.0 {
                    self.solve(child, b - 1, e)
                } else {
                    f64::INFINITY
                };
                if keep_val <= drop_val {
                    Entry {
                        value: keep_val,
                        keep: true,
                        left_allot: (b - 1) as u32,
                    }
                } else {
                    Entry {
                        value: drop_val,
                        keep: false,
                        left_allot: b as u32,
                    }
                }
            } else {
                let (lc, rc) = (2 * id, 2 * id + 1);
                let (drop_val, drop_b) = self.best_split(
                    b,
                    |s, bp| s.solve(lc, bp, e + c),
                    |s, bp| s.solve(rc, b - bp, e - c),
                );
                let (keep_val, keep_b) = if b >= 1 && c != 0.0 {
                    self.best_split(
                        b - 1,
                        |s, bp| s.solve(lc, bp, e),
                        |s, bp| s.solve(rc, b - 1 - bp, e),
                    )
                } else {
                    (f64::INFINITY, 0)
                };
                if keep_val <= drop_val {
                    Entry {
                        value: keep_val,
                        keep: true,
                        left_allot: keep_b as u32,
                    }
                } else {
                    Entry {
                        value: drop_val,
                        keep: false,
                        left_allot: drop_b as u32,
                    }
                }
            };
            self.memo.insert(key, entry);
            entry.value
        }

        /// Binary-search budget split over the monotone child curves (the
        /// seed's default strategy).
        fn best_split(
            &mut self,
            budget: usize,
            f: impl Fn(&mut Self, usize) -> f64 + Copy,
            g: impl Fn(&mut Self, usize) -> f64 + Copy,
        ) -> (f64, usize) {
            let (mut lo, mut hi) = (0usize, budget);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if f(self, mid) <= g(self, mid) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            let mut best = (f64::INFINITY, 0usize);
            for bp in [lo, lo.saturating_sub(1)] {
                let v = f(self, bp).max(g(self, bp));
                if v < best.0 {
                    best = (v, bp);
                }
            }
            best
        }
    }
}

/// Wall-clock milliseconds of one run of `f`.
fn time_ms(mut f: impl FnMut()) -> f64 {
    let t0 = std::time::Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e3
}

fn median(times: &mut [f64]) -> f64 {
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Times two alternatives interleaved — A, B, A, B, … — so slow drift in
/// background load hits both paths equally, and reports
/// `(median A ms, median B ms, median per-rep A/B ratio)`. The ratio is
/// taken per rep (adjacent runs share machine conditions) rather than
/// from the two medians.
fn compare_ms(reps: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64, f64) {
    let mut a_times = Vec::with_capacity(reps);
    let mut b_times = Vec::with_capacity(reps);
    for _ in 0..reps {
        a_times.push(time_ms(&mut a));
        b_times.push(time_ms(&mut b));
    }
    let mut ratios: Vec<f64> = a_times.iter().zip(&b_times).map(|(&x, &y)| x / y).collect();
    (
        median(&mut a_times),
        median(&mut b_times),
        median(&mut ratios),
    )
}

fn main() {
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let reps = 5usize;

    // ── Memo layout: seed HashMap vs StateTable, E5 workload ──────────
    let (n, b) = (1024usize, 64usize);
    let data = zipf(n, 1.0, 100_000.0, ZipfPlacement::Shuffled, 5);
    let metric = ErrorMetric::relative(1.0);
    let tree = ErrorTree1d::from_data(&data).unwrap();
    let solver = MinMaxErr::new(&data).unwrap();

    // Same optimum from all three paths — the library solver and both
    // memo layouts of the seed copy — or the comparison is meaningless.
    let library_objective = solver.run(b, metric).objective;
    let mut seed = seed_dedup::Solver::new(&tree, &data, 1.0, HashMap::new());
    let seed_objective = seed.solve(0, b, 0.0);
    let mut table = seed_dedup::Solver::new(&tree, &data, 1.0, StateTable::new());
    let table_objective = table.solve(0, b, 0.0);
    assert!(
        (library_objective - seed_objective).abs() < 1e-12
            && (table_objective - seed_objective).abs() < 1e-12,
        "memo layouts diverged: {seed_objective} vs {table_objective} vs {library_objective}"
    );
    let seed_states = seed.states();
    assert_eq!(seed_states, table.states(), "state counts diverged");

    let (hashmap_ms, statetable_ms, memo_speedup) = compare_ms(
        reps,
        || {
            let mut s = seed_dedup::Solver::new(&tree, &data, 1.0, HashMap::new());
            std::hint::black_box(s.solve(0, b, 0.0));
        },
        || {
            let mut s = seed_dedup::Solver::new(&tree, &data, 1.0, StateTable::new());
            std::hint::black_box(s.solve(0, b, 0.0));
        },
    );
    println!("memo layout (E5, N = {n}, B = {b}, {seed_states} states):");
    println!("  seed HashMap : {hashmap_ms:.2} ms");
    println!("  StateTable   : {statetable_ms:.2} ms  ({memo_speedup:.2}x)");

    // ── τ-sweep: sequential vs parallel, 2-D cube, ≥ 8 τ values ───────
    let side = 16usize;
    let shape = NdShape::hypercube(side, 2).unwrap();
    let ints: Vec<i64> = (0..side * side)
        .map(|i| ((i * 13 + 7) % 257) as i64 * 12 - 1500)
        .collect();
    let scheme = OnePlusEps::new(&shape, &ints).unwrap();
    let taus = 64 - scheme.rz().leading_zeros() as usize;
    assert!(taus >= 8, "need >= 8 tau values, got {taus}");
    let (tb, teps) = (16usize, 0.1f64);
    let (par_run, _) = scheme.run_with_reports(tb, teps);
    let (seq_run, _) = scheme.run_with_reports_sequential(tb, teps);
    assert_eq!(
        par_run.true_objective.to_bits(),
        seq_run.true_objective.to_bits(),
        "parallel sweep must be bit-identical"
    );
    let (seq_ms, par_ms, tau_speedup) = compare_ms(
        reps,
        || {
            std::hint::black_box(
                scheme
                    .run_with_reports_sequential(tb, teps)
                    .0
                    .true_objective,
            );
        },
        || {
            std::hint::black_box(scheme.run_with_reports(tb, teps).0.true_objective);
        },
    );
    println!("tau-sweep ({side}x{side} 2-D cube, {taus} tau values, B = {tb}, eps = {teps}):");
    println!("  sequential   : {seq_ms:.2} ms");
    println!("  parallel     : {par_ms:.2} ms  ({tau_speedup:.2}x on {host_cpus} cpu(s))");

    let doc = object(vec![
        ("bench", Value::String("dp_core".into())),
        ("host_cpus", Value::Number(host_cpus as f64)),
        ("reps", Value::Number(reps as f64)),
        (
            "memo_layout",
            object(vec![
                ("workload", Value::String("E5 zipf(1.0)-shuffled".into())),
                ("n", Value::Number(n as f64)),
                ("b", Value::Number(b as f64)),
                ("dp_states", Value::Number(seed_states as f64)),
                ("hashmap_ms", Value::Number(hashmap_ms)),
                ("statetable_ms", Value::Number(statetable_ms)),
                ("speedup", Value::Number(memo_speedup)),
            ]),
        ),
        (
            "tau_sweep",
            object(vec![
                ("shape", Value::String(format!("{side}x{side} 2-D cube"))),
                ("tau_values", Value::Number(taus as f64)),
                ("b", Value::Number(tb as f64)),
                ("epsilon", Value::Number(teps)),
                ("sequential_ms", Value::Number(seq_ms)),
                ("parallel_ms", Value::Number(par_ms)),
                ("speedup", Value::Number(tau_speedup)),
            ]),
        ),
    ]);
    // The bench usually runs from the workspace root under `cargo bench`;
    // resolve the root from the manifest dir so any cwd works.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has two ancestors")
        .to_path_buf();
    let out = root.join("BENCH_dp_core.json");
    std::fs::write(&out, doc.pretty() + "\n").expect("write BENCH_dp_core.json");
    println!("wrote {}", out.display());
}
