//! One-pass streaming ingest throughput: items/sec and peak sketch
//! bytes of [`StreamingMaxErr`] at N ∈ {2^14, 2^16, 2^18}, written to
//! `BENCH_stream.json` at the repo root.
//!
//! The pass pushes a zipf stream frame by frame (4096-item frames, the
//! serving layer's natural append granularity), finalizes, and records
//! wall time split into ingest and finalize. The headline numbers are
//! `items_per_sec` and `peak_sketch_bytes` — the second is the working
//! set the whole streaming claim rides on, so the bench also *asserts*
//! sublinear growth: quadrupling N must less than double the peak
//! bytes (the sketch depends on N only through `log N`).
//!
//! Run with `cargo bench --bench stream_ingest`.

use wsyn_core::json::{object, Value};
use wsyn_datagen::{zipf, ZipfPlacement};
use wsyn_stream::StreamingMaxErr;
use wsyn_synopsis::thresholder::RunParams;
use wsyn_synopsis::ErrorMetric;

/// Coefficient budget for every run.
const BUDGET: usize = 8;
/// Quantization epsilon for every run.
const EPS: f64 = 0.25;
/// Items per push frame.
const FRAME: usize = 4096;
/// Domain sizes measured.
const SIZES: [usize; 3] = [1 << 14, 1 << 16, 1 << 18];

fn ms_since(t0: std::time::Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

struct RunRow {
    n: usize,
    items_per_sec: f64,
    ingest_ms: f64,
    finalize_ms: f64,
    peak_bytes: usize,
    peak_cells: usize,
    bound_cells: usize,
    objective: f64,
}

fn run_size(n: usize) -> RunRow {
    let data = zipf(n, 1.1, 100_000.0, ZipfPlacement::Shuffled, 40);
    let scale = data.iter().fold(0.0f64, |s, v| s.max(v.abs()));
    let params = RunParams::new(BUDGET, ErrorMetric::absolute()).eps(EPS);
    let mut builder = StreamingMaxErr::new(n, scale, &params).expect("builder");
    let bound_cells = builder.state_bound_cells();

    let t0 = std::time::Instant::now();
    for frame in data.chunks(FRAME) {
        builder.push_slice(frame).expect("push");
    }
    let ingest_ms = ms_since(t0);
    let peak_cells = builder.peak_cells();
    let peak_bytes = builder.peak_bytes();

    let t0 = std::time::Instant::now();
    let run = builder.finalize().expect("finalize");
    let finalize_ms = ms_since(t0);

    assert!(run.synopsis.len() <= BUDGET);
    assert!(
        run.peak_cells <= bound_cells,
        "N={n}: peak {} cells above the sketch bound {bound_cells}",
        run.peak_cells
    );

    RunRow {
        n,
        items_per_sec: n as f64 / (ingest_ms / 1e3),
        ingest_ms,
        finalize_ms,
        peak_bytes: peak_bytes.max(run.peak_bytes),
        peak_cells: peak_cells.max(run.peak_cells),
        bound_cells,
        objective: run.objective,
    }
}

fn main() {
    let mut rows = Vec::new();
    let mut measured: Vec<RunRow> = Vec::new();
    for n in SIZES {
        let row = run_size(n);
        println!(
            "N = 2^{}: {:.0} items/sec, ingest {:.1} ms, finalize {:.1} ms, peak sketch {} bytes ({} cells, bound {})",
            n.trailing_zeros(),
            row.items_per_sec,
            row.ingest_ms,
            row.finalize_ms,
            row.peak_bytes,
            row.peak_cells,
            row.bound_cells
        );
        measured.push(row);
    }

    // The sublinearity witness: each 4x step in N must less than double
    // the peak sketch bytes (log-factor growth, never linear).
    for pair in measured.windows(2) {
        let (small, big) = (&pair[0], &pair[1]);
        assert!(
            big.peak_bytes < small.peak_bytes * 2,
            "peak sketch bytes grew superlogarithmically: {} at N={} vs {} at N={}",
            big.peak_bytes,
            big.n,
            small.peak_bytes,
            small.n
        );
    }

    for row in &measured {
        rows.push(object(vec![
            ("n", Value::Number(row.n as f64)),
            ("items_per_sec", Value::Number(row.items_per_sec)),
            ("ingest_ms", Value::Number(row.ingest_ms)),
            ("finalize_ms", Value::Number(row.finalize_ms)),
            ("peak_sketch_bytes", Value::Number(row.peak_bytes as f64)),
            ("peak_cells", Value::Number(row.peak_cells as f64)),
            ("state_bound_cells", Value::Number(row.bound_cells as f64)),
            ("objective", Value::Number(row.objective)),
        ]));
    }
    let doc = object(vec![
        ("bench", Value::String("stream_ingest".into())),
        ("budget", Value::Number(BUDGET as f64)),
        ("eps", Value::Number(EPS)),
        ("frame", Value::Number(FRAME as f64)),
        ("sizes", Value::Array(rows)),
    ]);
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has two ancestors")
        .to_path_buf();
    let out = root.join("BENCH_stream.json");
    std::fs::write(&out, doc.pretty() + "\n").expect("write BENCH_stream.json");
    println!("wrote {}", out.display());
}
