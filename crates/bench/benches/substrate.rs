//! Criterion micro-benchmarks for the substrate: Haar transforms (linear
//! time, §2), error-tree reconstruction, and query-engine operations
//! (`O(log N)` points, `O(B)` range sums).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsyn_aqp::QueryEngine1d;
use wsyn_datagen::{zipf, ZipfPlacement};
use wsyn_haar::nd::{nonstandard, standard, NdArray, NdShape};
use wsyn_haar::{transform, ErrorTree1d};
use wsyn_synopsis::one_dim::MinMaxErr;
use wsyn_synopsis::ErrorMetric;

fn bench_transform_1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("haar_forward_1d");
    for n in [1usize << 10, 1 << 14, 1 << 18] {
        let data = zipf(n, 0.8, 1e6, ZipfPlacement::Shuffled, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| transform::forward(&data).unwrap());
        });
    }
    group.finish();
}

fn bench_transform_nd(c: &mut Criterion) {
    let mut group = c.benchmark_group("haar_forward_nd_64x64");
    let shape = NdShape::hypercube(64, 2).unwrap();
    let data: Vec<f64> = (0..shape.len()).map(|i| (i % 97) as f64).collect();
    let arr = NdArray::new(shape, data).unwrap();
    group.bench_function("nonstandard", |bch| {
        bch.iter(|| nonstandard::forward(&arr).unwrap());
    });
    group.bench_function("standard", |bch| {
        bch.iter(|| standard::forward(&arr).unwrap());
    });
    group.finish();
}

fn bench_reconstruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconstruction_n4096");
    let data = zipf(4096, 0.8, 1e6, ZipfPlacement::Shuffled, 1);
    let tree = ErrorTree1d::from_data(&data).unwrap();
    group.bench_function("full_inverse", |bch| {
        bch.iter(|| tree.reconstruct_all());
    });
    group.bench_function("single_point_path", |bch| {
        bch.iter(|| tree.reconstruct(1234));
    });
    group.finish();
}

fn bench_query_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_engine_n1024_b32");
    let data = zipf(1024, 1.0, 1e6, ZipfPlacement::Shuffled, 1);
    // Greedy synopsis (fast to build) — query cost depends only on B.
    let tree = ErrorTree1d::from_data(&data).unwrap();
    let syn = wsyn_synopsis::greedy::greedy_l2_1d(&tree, 32);
    let engine = QueryEngine1d::new(syn);
    group.bench_function("point", |bch| {
        bch.iter(|| engine.point(777));
    });
    group.bench_function("range_sum_quarter", |bch| {
        bch.iter(|| engine.range_sum(256..512));
    });
    group.finish();
}

fn bench_synopsis_construction_small(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction_n64_b8");
    group.sample_size(20);
    let data = zipf(64, 1.0, 1e5, ZipfPlacement::Shuffled, 1);
    let tree = ErrorTree1d::from_data(&data).unwrap();
    group.bench_function("greedy_l2", |bch| {
        bch.iter(|| wsyn_synopsis::greedy::greedy_l2_1d(&tree, 8));
    });
    let solver = MinMaxErr::new(&data).unwrap();
    group.bench_function("minmaxerr", |bch| {
        bch.iter(|| solver.run(8, ErrorMetric::relative(1.0)));
    });
    group.finish();
}

fn bench_dynamic_updates(c: &mut Criterion) {
    use wsyn_stream::DynamicErrorTree;
    let mut group = c.benchmark_group("dynamic_update");
    for n in [1usize << 8, 1 << 12, 1 << 16] {
        let data = zipf(n, 0.8, 1e6, ZipfPlacement::Shuffled, 1);
        let mut tree = DynamicErrorTree::new(&data).unwrap();
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, &n| {
            bch.iter(|| {
                i = (i * 2654435761 + 1) % n;
                tree.update(i, 1.0);
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_transform_1d,
    bench_transform_nd,
    bench_reconstruction,
    bench_query_engine,
    bench_synopsis_construction_small,
    bench_dynamic_updates
);
criterion_main!(benches);
