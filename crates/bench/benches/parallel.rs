//! Pool-scaling benchmark: the 1 → N thread curve for both pool-driven
//! solve paths — the shard-parallel 1-D dedup DP and the τ-sweep of the
//! `(1+ε)` scheme — with every timed run first checked bit-identical to
//! the single-thread reference. Results land in `BENCH_parallel.json`
//! at the repo root so the scaling trajectory accumulates across PRs.
//!
//! Run with `cargo bench --bench parallel`. The τ-sweep curve (many
//! coarse, independent DP solves) is the scaling gate: at 4 threads its
//! parallel efficiency `speedup / 4` must reach 0.7, unless
//! `WSYN_BENCH_SKIP_SCALING_GATE` is set (required on hosts with fewer
//! than 4 CPUs, where the speedup is physically capped below the gate).
//! The 1-D shard curve is reported but not gated: its fan-out is four
//! frontier subtrees plus a sequential merge-and-finish pass, so Amdahl
//! caps its efficiency well below the τ-sweep's even on idle multicore
//! hosts.

use wsyn_core::json::{object, Value};
use wsyn_core::Pool;
use wsyn_datagen::{zipf, ZipfPlacement};
use wsyn_haar::nd::NdShape;
use wsyn_synopsis::multi_dim::oneplus::OnePlusEps;
use wsyn_synopsis::one_dim::MinMaxErr;
use wsyn_synopsis::ErrorMetric;

/// Name of the escape hatch consulted by the efficiency gate.
const SKIP_GATE_ENV: &str = "WSYN_BENCH_SKIP_SCALING_GATE";

/// Efficiency the τ-sweep must reach at [`GATE_THREADS`] threads.
const GATE_EFFICIENCY: f64 = 0.7;
const GATE_THREADS: usize = 4;

/// Wall-clock milliseconds of one run of `f`.
fn time_ms(mut f: impl FnMut()) -> f64 {
    let t0 = std::time::Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e3
}

fn median(times: &mut [f64]) -> f64 {
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Median-of-`reps` wall time of `f` at each thread count, as
/// `(threads, ms, speedup vs threads = 1)` rows. All counts are timed in
/// one interleaved round-robin so background drift hits every point
/// equally.
fn scaling_curve(
    reps: usize,
    counts: &[usize],
    mut f: impl FnMut(usize),
) -> Vec<(usize, f64, f64)> {
    let mut times: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); counts.len()];
    for _ in 0..reps {
        for (slot, &threads) in counts.iter().enumerate() {
            times[slot].push(time_ms(|| f(threads)));
        }
    }
    let ms: Vec<f64> = times.iter_mut().map(|t| median(t)).collect();
    counts
        .iter()
        .zip(&ms)
        .map(|(&threads, &m)| (threads, m, ms[0] / m))
        .collect()
}

fn curve_json(rows: &[(usize, f64, f64)]) -> Value {
    Value::Array(
        rows.iter()
            .map(|&(threads, ms, speedup)| {
                object(vec![
                    ("threads", Value::Number(threads as f64)),
                    ("ms", Value::Number(ms)),
                    ("speedup", Value::Number(speedup)),
                ])
            })
            .collect(),
    )
}

fn main() {
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let reps = 5usize;
    let mut counts = vec![1usize, 2, 4];
    if host_cpus > 4 {
        counts.push(host_cpus);
    }

    // ── 1-D shard-parallel dedup DP, E5 workload (scaled down: the
    // speculative shard solves make each run seconds-long at N = 1024) ──
    let (n, b) = (512usize, 32usize);
    let data = zipf(n, 1.0, 100_000.0, ZipfPlacement::Shuffled, 5);
    let metric = ErrorMetric::relative(1.0);
    let solver = MinMaxErr::new(&data).unwrap();
    // A one-thread pool falls back to the sequential kernel, so the
    // curve's threads = 1 point times the honest sequential baseline
    // directly; the decomposed solve's stats are checked invariant only
    // across counts >= 2.
    let reference = solver.run(b, metric);
    let mut decomposed_stats = None;
    for &threads in &counts {
        let r = solver.run_parallel(b, metric, &Pool::with_threads(threads));
        assert_eq!(
            r.objective.to_bits(),
            reference.objective.to_bits(),
            "1-D solve not bit-identical at {threads} threads"
        );
        if threads == 1 {
            assert_eq!(
                r.stats, reference.stats,
                "threads = 1 must take the sequential fallback"
            );
        } else {
            if let Some(prev) = decomposed_stats {
                assert_eq!(r.stats, prev, "1-D stats depend on thread count");
            }
            decomposed_stats = Some(r.stats);
        }
    }
    let one_dim = scaling_curve(reps, &counts, |threads| {
        let pool = Pool::with_threads(threads);
        std::hint::black_box(solver.run_parallel(b, metric, &pool).objective);
    });
    // The plain sequential solve is the honest baseline: shard solves
    // speculate over every frontier (budget, error) pair and cannot use
    // the global incumbent for pruning, so the parallel path trades
    // extra total work for concurrency. The JSON records both so the
    // break-even thread count is visible.
    let mut seq_times: Vec<f64> = (0..reps)
        .map(|_| {
            time_ms(|| {
                std::hint::black_box(solver.run(b, metric).objective);
            })
        })
        .collect();
    let sequential_run_ms = median(&mut seq_times);
    println!("1-D shard-parallel dedup (N = {n}, B = {b}):");
    println!("  sequential run(): {sequential_run_ms:.2} ms");
    for &(threads, ms, speedup) in &one_dim {
        println!("  {threads} thread(s): {ms:.2} ms  ({speedup:.2}x)");
    }

    // ── τ-sweep of the (1+ε) scheme, 2-D cube, ≥ 8 τ values ───────────
    let side = 16usize;
    let shape = NdShape::hypercube(side, 2).unwrap();
    let ints: Vec<i64> = (0..side * side)
        .map(|i| ((i * 13 + 7) % 257) as i64 * 12 - 1500)
        .collect();
    let scheme = OnePlusEps::new(&shape, &ints).unwrap();
    let taus = 64 - scheme.rz().leading_zeros() as usize;
    assert!(taus >= 8, "need >= 8 tau values, got {taus}");
    let (tb, teps) = (16usize, 0.1f64);
    let tau_reference = scheme.run_with_pool(tb, teps, &Pool::with_threads(1));
    for &threads in &counts {
        let r = scheme.run_with_pool(tb, teps, &Pool::with_threads(threads));
        assert_eq!(
            r.true_objective.to_bits(),
            tau_reference.true_objective.to_bits(),
            "tau-sweep not bit-identical at {threads} threads"
        );
        assert_eq!(
            r.stats, tau_reference.stats,
            "tau-sweep stats depend on thread count"
        );
    }
    let tau_sweep = scaling_curve(reps, &counts, |threads| {
        let pool = Pool::with_threads(threads);
        std::hint::black_box(scheme.run_with_pool(tb, teps, &pool).true_objective);
    });
    println!("tau-sweep ({side}x{side} 2-D cube, {taus} tau values, B = {tb}, eps = {teps}):");
    for &(threads, ms, speedup) in &tau_sweep {
        println!("  {threads} thread(s): {ms:.2} ms  ({speedup:.2}x)");
    }

    // ── Efficiency gate ───────────────────────────────────────────────
    let gate_row = tau_sweep
        .iter()
        .find(|&&(threads, _, _)| threads == GATE_THREADS)
        .copied();
    let efficiency = gate_row.map(|(threads, _, speedup)| speedup / threads as f64);
    let skip_gate = std::env::var_os(SKIP_GATE_ENV).is_some();
    if let Some(eff) = efficiency {
        println!(
            "tau-sweep efficiency at {GATE_THREADS} threads: {eff:.2} \
             (gate {GATE_EFFICIENCY}, {} on {host_cpus} cpu(s))",
            if skip_gate { "skipped" } else { "enforced" }
        );
        assert!(
            skip_gate || eff >= GATE_EFFICIENCY,
            "tau-sweep efficiency {eff:.2} at {GATE_THREADS} threads is below \
             {GATE_EFFICIENCY}; set {SKIP_GATE_ENV} only on hosts with fewer \
             than {GATE_THREADS} CPUs"
        );
    }

    let doc = object(vec![
        ("bench", Value::String("parallel".into())),
        ("host_cpus", Value::Number(host_cpus as f64)),
        ("reps", Value::Number(reps as f64)),
        (
            "one_dim_shards",
            object(vec![
                ("workload", Value::String("E5 zipf(1.0)-shuffled".into())),
                ("n", Value::Number(n as f64)),
                ("b", Value::Number(b as f64)),
                ("sequential_run_ms", Value::Number(sequential_run_ms)),
                ("curve", curve_json(&one_dim)),
            ]),
        ),
        (
            "tau_sweep",
            object(vec![
                ("shape", Value::String(format!("{side}x{side} 2-D cube"))),
                ("tau_values", Value::Number(taus as f64)),
                ("b", Value::Number(tb as f64)),
                ("epsilon", Value::Number(teps)),
                ("curve", curve_json(&tau_sweep)),
                (
                    "efficiency_at_4",
                    efficiency.map_or(Value::Null, Value::Number),
                ),
                ("gate_skipped", Value::Bool(skip_gate)),
            ]),
        ),
    ]);
    // The bench usually runs from the workspace root under `cargo bench`;
    // resolve the root from the manifest dir so any cwd works.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has two ancestors")
        .to_path_buf();
    let out = root.join("BENCH_parallel.json");
    std::fs::write(&out, doc.pretty() + "\n").expect("write BENCH_parallel.json");
    println!("wrote {}", out.display());
}
