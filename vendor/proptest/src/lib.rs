//! In-tree stand-in for the subset of the `proptest` 1.x API this
//! workspace uses. The build environment has no crates.io access and the
//! workspace dependency policy (DESIGN.md §6) forbids external
//! dependencies, so this is a hand-rolled random-testing harness:
//!
//! * [`Strategy`] — value generation with `prop_map` / `prop_flat_map` /
//!   `boxed`, implemented for numeric ranges, tuples, [`Just`], and
//!   [`collection::vec`];
//! * the [`proptest!`] macro — runs each case a configurable number of
//!   times ([`ProptestConfig::with_cases`]) from a seed derived from the
//!   test name, so failures are reproducible run-to-run;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`].
//!
//! **Deliberate simplification:** no shrinking. A failing case reports the
//! generated inputs (via `Debug` where available at the macro call site)
//! and panics. That is enough for the deterministic-DP invariants tested
//! here, where counterexamples are already tiny (N ≤ 256).

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The generator driving test-case production. A thin wrapper over the
/// workspace's deterministic [`StdRng`].
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator seeded from a test name: reproducible run-to-run,
    /// different across tests.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// The underlying rng.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the runner draws a fresh case.
    Reject,
    /// `prop_assert!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure with a message (used by the assert macros).
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// Constructs a rejection (used by `prop_assume!`).
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Result type the `proptest!` case body is wrapped into.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A recipe for generating values of an associated type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng().gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen::<u64>() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Runner configuration: number of passing cases required per test.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Passing cases to run before declaring success.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Accepted length arguments for [`vec`]: a fixed length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// A strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size` and elements drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng().gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Uniform choice among boxed strategies — the engine behind
/// [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given options (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.rng().gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Formats the generated bindings of a failing case for the panic message.
pub fn format_binding<T: Debug>(name: &str, value: &T) -> String {
    format!("  {name} = {value:?}")
}

/// Chooses uniformly among the listed strategies (all must yield the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Rejects the current case unless `cond` holds; the runner draws a fresh
/// one (bounded retries).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: {l:?}\n right: {r:?}"),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: {l:?}\n right: {r:?}\n {}",
                        format!($($fmt)*)),
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {l:?}"
            )));
        }
    }};
}

/// Declares property tests. Each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running [`ProptestConfig::cases`] passing cases
/// (default 256, overridable with a leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
     $($(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strategy:expr),* $(,)? ) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(1000);
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest {}: too many rejected cases ({} attempts, {} passed)",
                        stringify!($name), attempts, passed
                    );
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    #[allow(unreachable_code)]
                    let case = || -> $crate::TestCaseResult {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    match case() {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {}:\n{}",
                                stringify!($name), passed + 1, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges");
        let s = (1u32..=4).prop_flat_map(|m| crate::collection::vec(-50i32..=50, 1usize << m));
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v.len().is_power_of_two() && v.len() >= 2 && v.len() <= 16);
            assert!(v.iter().all(|x| (-50..=50).contains(x)));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::TestRng::deterministic("oneof");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_and_asserts(v in crate::collection::vec(0i32..10, 1..8), flip in any::<bool>()) {
            prop_assume!(!v.is_empty());
            let total: i32 = v.iter().sum();
            prop_assert!(total >= 0, "sum {total} negative for {v:?}");
            prop_assert_eq!(v.len(), v.len());
            let _ = flip;
        }
    }

    proptest! {
        #[test]
        fn tuple_strategies_work((i, x) in (0usize..64, -100i32..100)) {
            prop_assert!(i < 64);
            prop_assert!((-100..100).contains(&x));
        }
    }
}
