//! In-tree stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses. The build environment has no crates.io access and the
//! workspace dependency policy (DESIGN.md §6) forbids external
//! dependencies, so this is a hand-rolled wall-clock harness: each
//! benchmark is auto-calibrated to a per-sample iteration count, run for
//! `sample_size` samples, and reported as the median ns/iter on stdout.
//! No statistical outlier analysis, no HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier, as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Target time a single sample aims for during calibration.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(25);

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Runs a standalone benchmark (group of one).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(String::new());
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/function/parameter`-style id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Id carrying just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let median = run_samples(self.sample_size, &mut f);
        report(&self.name, &id.0, median);
        self
    }

    /// Benchmarks `f` with an input value (the id typically names it).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let median = run_samples(self.sample_size, &mut |b: &mut Bencher| f(b, input));
        report(&self.name, &id.0, median);
        self
    }

    /// Ends the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, ns_per_iter: f64) {
    let label = if group.is_empty() {
        id.to_string()
    } else if id.is_empty() {
        group.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!("bench: {label:<50} {ns_per_iter:>14.1} ns/iter");
}

/// Calibrates an iteration count, collects `samples` timed samples, and
/// returns the median ns/iter.
fn run_samples<F: FnMut(&mut Bencher)>(samples: usize, f: &mut F) -> f64 {
    // Calibration: grow iters until one sample takes long enough to time.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 20 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (TARGET_SAMPLE_TIME.as_secs_f64() / b.elapsed.as_secs_f64()).ceil() as u64
        };
        iters = iters.saturating_mul(grow.clamp(2, 16)).min(1 << 20);
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / b.iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    per_iter[per_iter.len() / 2]
}

/// Times closures over a fixed iteration count.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares the benchmark functions of one target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(8usize), &8usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
    }
}
