//! In-tree stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The build environment has no crates.io access and the workspace
//! dependency policy (DESIGN.md §6) forbids external dependencies, so the
//! generators are hand-rolled: `StdRng` is xoshiro256** seeded through
//! SplitMix64 — deterministic per seed, statistically solid for data
//! generation and coin flips, **not** cryptographic.
//!
//! Covered surface: `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range}`
//! over integer/float `Range`/`RangeInclusive`, and
//! `seq::SliceRandom::shuffle`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values drawable uniformly from the generator's full bit stream
/// (the `Standard` distribution in real rand).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Exactly uniform `u64` in `[0, span)`: Lemire's widening-multiply
/// method with rejection of the biased low zone.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span; // 2^64 mod span
    loop {
        let m = (rng.next_u64() as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                let off = uniform_u64(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng); // [0, 1)
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the exclusive endpoint.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64; // [0, 1]
        lo + (hi - lo) * u
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng) as f32;
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            f32::from_bits(self.end.to_bits() - 1)
        } else {
            v
        }
    }
}

/// The user-facing generator trait: `gen` and `gen_range`, as in rand 0.8.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (`f64` → `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator: xoshiro256** with SplitMix64 seed
    /// expansion. (Real rand's `StdRng` is ChaCha12; this stand-in keeps
    /// the same *API contract* — reproducible per seed — with a fast
    /// non-cryptographic core.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Blackman & Vigna's recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256**
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates), as in rand's `SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Prelude, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-10i32..=10);
            assert!((-10..=10).contains(&v));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let g = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&g));
            let h = rng.gen_range(0.05f64..=0.3);
            assert!((0.05..=0.3).contains(&h));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..64).collect();
        let mut rng = StdRng::seed_from_u64(5);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, (0..64).collect::<Vec<_>>(), "identity shuffle");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
